package match

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"wqe/internal/graph"
	"wqe/internal/query"
)

// keyFixture builds a small attributed graph and a 3-star query with
// literals — enough structure that key construction exercises every
// signature path (direction, bounds, literals, focus wildcarding).
func keyFixture() (*graph.Graph, *query.Query) {
	g := graph.New()
	phones := make([]graph.NodeID, 4)
	for i := range phones {
		phones[i] = g.AddNode("phone", map[string]graph.Value{
			"price": graph.N(float64(100 + 50*i)),
			"brand": graph.S("x"),
		})
	}
	for i := 0; i < 3; i++ {
		store := g.AddNode("store", map[string]graph.Value{"rating": graph.N(float64(i + 2))})
		maker := g.AddNode("maker", nil)
		g.AddEdge(store, phones[i], "sells")
		g.AddEdge(maker, phones[i], "makes")
		g.AddEdge(phones[i], phones[i+1], "rel")
	}
	g.WarmCaches()

	q := query.New()
	p := q.AddNode("phone", query.Literal{Attr: "price", Op: graph.LE, Val: graph.N(250)})
	s := q.AddNode("store", query.Literal{Attr: "rating", Op: graph.GE, Val: graph.N(2)})
	mk := q.AddNode("maker")
	q.AddEdge(s, p, 1)
	q.AddEdge(mk, p, 2)
	q.Focus = p
	return g, q
}

// BenchmarkStarKeys measures cache-key construction for one evaluation:
// the per-star structural keys plus the per-graph prefix. This is the
// allocation hot path the strings.Builder rewrite targets (the old code
// rebuilt "g%d|" + s.Key(q) with fmt.Sprintf per star per Match).
func BenchmarkStarKeys(b *testing.B) {
	g, q := keyFixture()
	m := NewMatcher(g, nil, NewCache(64, 0.95))
	stars := Decompose(q)
	b.ReportAllocs()
	b.ResetTimer()
	var sink string
	for i := 0; i < b.N; i++ {
		var kb strings.Builder
		for _, s := range stars {
			kb.Reset()
			kb.WriteString(m.keyPrefix)
			s.AppendKey(&kb, q)
			sink = kb.String()
		}
	}
	_ = sink
}

// BenchmarkStarKeysLegacy reconstructs the pre-optimization key path —
// fmt.Sprintf("g%d|%s", uid, key) around sprintf-built edge signatures
// — so the allocation win of the builder rewrite stays measurable:
// run both StarKeys benchmarks with -benchmem and compare.
func BenchmarkStarKeysLegacy(b *testing.B) {
	g, q := keyFixture()
	stars := Decompose(q)
	legacySig := func(u query.NodeID) string {
		if u == q.Focus {
			return q.Nodes[u].Label + "{*}"
		}
		return nodeSig(q, u)
	}
	legacyEdgeSig := func(e StarEdge) string {
		dir := "<"
		if e.Out {
			dir = ">"
		}
		other := nodeSig(q, e.Other)
		if e.Other == q.Focus {
			other = q.Nodes[e.Other].Label + "{*}"
		}
		return fmt.Sprintf("%s%d%s", dir, e.Bound, other)
	}
	legacyKey := func(s *StarQuery) string {
		var kb strings.Builder
		kb.WriteString("c:")
		kb.WriteString(legacySig(s.Center))
		edges := make([]string, 0, len(s.Edges))
		for _, e := range s.Edges {
			edges = append(edges, legacyEdgeSig(e))
		}
		sort.Strings(edges)
		for _, e := range edges {
			kb.WriteByte('|')
			kb.WriteString(e)
		}
		if s.Center == q.Focus {
			kb.WriteString("|C*")
		}
		if !s.HasFocus {
			fmt.Fprintf(&kb, "|aug:%d:%s", s.AugDist, legacySig(q.Focus))
		}
		return kb.String()
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink string
	for i := 0; i < b.N; i++ {
		for _, s := range stars {
			sink = fmt.Sprintf("g%d|%s", g.UID(), legacyKey(s))
		}
	}
	_ = sink
}

// BenchmarkMatchWarmCache measures a full Match against a warm star
// cache — the steady-state Q-Chase evaluation cost, dominated by key
// construction and table reads rather than materialization.
func BenchmarkMatchWarmCache(b *testing.B) {
	g, q := keyFixture()
	m := NewMatcher(g, fixedDist{g}, NewCache(64, 0.95))
	m.Match(q) // warm
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Match(q)
	}
}

// fixedDist is a BFS-backed oracle without importing distindex's Auto
// heuristics (keeps the benchmark allocation profile about matching).
type fixedDist struct{ g *graph.Graph }

func (d fixedDist) Dist(s, t graph.NodeID) int { return d.g.Dist(s, t, d.g.NumNodes()) }
func (d fixedDist) Within(s, t graph.NodeID, bound int) bool {
	return d.g.Dist(s, t, bound) <= bound
}
