package match

import (
	"math/rand"
	"testing"

	"wqe/internal/distindex"
	"wqe/internal/graph"
	"wqe/internal/query"
)

func randomGraph(n, m int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New()
	labels := []string{"A", "B", "C"}
	for i := 0; i < n; i++ {
		g.AddNode(labels[rng.Intn(len(labels))], map[string]graph.Value{
			"x": graph.N(float64(rng.Intn(6))),
		})
	}
	for i := 0; i < m; i++ {
		a, b := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
		if a != b {
			g.AddEdge(a, b, "")
		}
	}
	return g
}

func randomQuery(g *graph.Graph, rng *rand.Rand) *query.Query {
	labels := []string{"A", "B", "C", ""}
	q := query.New()
	n := 1 + rng.Intn(3)
	for i := 0; i < n; i++ {
		u := q.AddNode(labels[rng.Intn(len(labels))])
		if rng.Intn(2) == 0 {
			op := []graph.Op{graph.GE, graph.LE, graph.EQ}[rng.Intn(3)]
			q.Nodes[u].Literals = append(q.Nodes[u].Literals,
				query.Literal{Attr: "x", Op: op, Val: graph.N(float64(rng.Intn(6)))})
		}
	}
	// Connect randomly (tree-ish plus a chance of an extra edge).
	for i := 1; i < n; i++ {
		a, b := query.NodeID(rng.Intn(i)), query.NodeID(i)
		if rng.Intn(2) == 0 {
			a, b = b, a
		}
		if q.FindEdge(a, b) < 0 {
			q.AddEdge(a, b, 1+rng.Intn(2))
		}
	}
	q.Focus = query.NodeID(rng.Intn(n))
	return q
}

// bruteAnswer enumerates every injective valuation by exhaustive
// recursion: the reference semantics for P-homomorphism matching.
func bruteAnswer(g *graph.Graph, q *query.Query) []graph.NodeID {
	var active []query.NodeID
	for u := range q.Nodes {
		if !q.IsolatedIgnored(query.NodeID(u)) {
			active = append(active, query.NodeID(u))
		}
	}
	h := map[query.NodeID]graph.NodeID{}
	used := map[graph.NodeID]bool{}
	answer := map[graph.NodeID]bool{}

	okSoFar := func() bool {
		for _, e := range q.Edges {
			hv, okF := h[e.From]
			hw, okT := h[e.To]
			if okF && okT {
				if g.Dist(hv, hw, e.Bound) > e.Bound {
					return false
				}
			}
		}
		return true
	}
	var rec func(i int)
	rec = func(i int) {
		if i == len(active) {
			answer[h[q.Focus]] = true
			return
		}
		u := active[i]
		for v := 0; v < g.NumNodes(); v++ {
			vv := graph.NodeID(v)
			if used[vv] || !q.IsCandidate(g, u, vv) {
				continue
			}
			h[u] = vv
			used[vv] = true
			if okSoFar() {
				rec(i + 1)
			}
			delete(h, u)
			delete(used, vv)
		}
	}
	rec(0)
	var out []graph.NodeID
	for v := range answer {
		out = append(out, v)
	}
	return out
}

func sameSet(a, b []graph.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	m := map[graph.NodeID]bool{}
	for _, v := range a {
		m[v] = true
	}
	for _, v := range b {
		if !m[v] {
			return false
		}
	}
	return true
}

// TestMatcherAgainstBruteForce is the core matcher property: the
// star-view matcher agrees with exhaustive injective-valuation
// enumeration on random graphs and queries, with and without caching.
func TestMatcherAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cache := NewCache(256, 0.95)
	for trial := 0; trial < 120; trial++ {
		g := randomGraph(10+rng.Intn(8), 20+rng.Intn(20), int64(trial))
		q := randomQuery(g, rng)
		want := bruteAnswer(g, q)

		for _, c := range []*Cache{nil, cache} {
			m := NewMatcher(g, distindex.NewBFS(g), c)
			got := m.Match(q).Answer
			if !sameSet(got, want) {
				t.Fatalf("trial %d (cache=%v):\nQ: %s\ngot  %v\nwant %v",
					trial, c != nil, q, got, want)
			}
		}
	}
}

// TestMatcherIgnoresIsolated: detached non-focus nodes pose no
// constraint.
func TestMatcherIgnoresIsolated(t *testing.T) {
	g := graph.New()
	a := g.AddNode("A", nil)
	b := g.AddNode("B", nil)
	g.AddEdge(a, b, "")

	q := query.New()
	fa := q.AddNode("A")
	q.AddNode("Z") // isolated; no Z exists in the graph
	q.Focus = fa

	m := NewMatcher(g, distindex.NewBFS(g), nil)
	got := m.Match(q).Answer
	if len(got) != 1 || got[0] != a {
		t.Errorf("isolated non-focus node must not constrain: got %v", got)
	}
}

func TestMatcherInjective(t *testing.T) {
	// Two query nodes with the same label need two distinct graph nodes.
	g := graph.New()
	a := g.AddNode("A", nil)
	b := g.AddNode("A", nil)
	g.AddEdge(a, b, "")
	g.AddEdge(b, a, "")

	q := query.New()
	u := q.AddNode("A")
	v := q.AddNode("A")
	w := q.AddNode("A")
	q.AddEdge(u, v, 1)
	q.AddEdge(v, w, 1)
	q.Focus = u

	m := NewMatcher(g, distindex.NewBFS(g), nil)
	if got := m.Match(q).Answer; len(got) != 0 {
		t.Errorf("three injective A-nodes cannot fit in two: got %v", got)
	}
}

func TestEdgeToPathMatching(t *testing.T) {
	// a → x → b : bound 1 must fail, bound 2 must succeed.
	g := graph.New()
	a := g.AddNode("A", nil)
	x := g.AddNode("X", nil)
	b := g.AddNode("B", nil)
	g.AddEdge(a, x, "")
	g.AddEdge(x, b, "")

	build := func(bound int) *query.Query {
		q := query.New()
		u := q.AddNode("A")
		v := q.AddNode("B")
		q.AddEdge(u, v, bound)
		q.Focus = u
		return q
	}
	m := NewMatcher(g, distindex.NewBFS(g), nil)
	if got := m.Match(build(1)).Answer; len(got) != 0 {
		t.Errorf("bound 1 should not match a 2-hop path: %v", got)
	}
	if got := m.Match(build(2)).Answer; len(got) != 1 || got[0] != a {
		t.Errorf("bound 2 should match: %v", got)
	}
}

// TestDecomposeCovers: every query node and edge is covered by some
// star (§2.3), for random queries.
func TestDecomposeCovers(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := randomGraph(10, 20, 3)
	for trial := 0; trial < 100; trial++ {
		q := randomQuery(g, rng)
		stars := Decompose(q)
		edgeCovered := make([]bool, len(q.Edges))
		nodeCovered := make([]bool, len(q.Nodes))
		for _, s := range stars {
			nodeCovered[s.Center] = true
			for _, e := range s.Edges {
				edgeCovered[e.EdgeIdx] = true
				nodeCovered[e.Other] = true
			}
		}
		for i, c := range edgeCovered {
			if !c {
				t.Fatalf("trial %d: edge %d uncovered in %s", trial, i, q)
			}
		}
		for u, c := range nodeCovered {
			if !c && !q.IsolatedIgnored(query.NodeID(u)) {
				t.Fatalf("trial %d: node %d uncovered in %s", trial, u, q)
			}
		}
	}
}

// TestStarKeyFocusLiteralInvariance: rewrites that only change focus
// literals share star cache keys (the §5.2 incremental-evaluation
// optimization).
func TestStarKeyFocusLiteralInvariance(t *testing.T) {
	build := func(price float64, carrierLit bool) *query.Query {
		q := query.New()
		cell := q.AddNode("Cellphone",
			query.Literal{Attr: "Price", Op: graph.GE, Val: graph.N(price)})
		car := q.AddNode("Carrier")
		if carrierLit {
			q.Nodes[car].Literals = append(q.Nodes[car].Literals,
				query.Literal{Attr: "Discount", Op: graph.EQ, Val: graph.N(25)})
		}
		q.AddEdge(car, cell, 1)
		q.Focus = cell
		return q
	}
	keysOf := func(q *query.Query) map[string]bool {
		out := map[string]bool{}
		for _, s := range Decompose(q) {
			out[s.Key(q)] = true
		}
		return out
	}
	k1 := keysOf(build(840, false))
	k2 := keysOf(build(790, false))
	for k := range k1 {
		if !k2[k] {
			t.Errorf("focus literal change must not change star keys: %v vs %v", k1, k2)
		}
	}
	k3 := keysOf(build(840, true))
	same := true
	for k := range k1 {
		if !k3[k] {
			same = false
		}
	}
	if same {
		t.Error("non-focus literal change must change some star key")
	}
}

func TestCacheEviction(t *testing.T) {
	// Single shard: whole-cache capacity semantics, so three keys must
	// contend for two slots regardless of how they hash.
	c := NewCacheSharded(2, 0.95, 1)
	t1, t2, t3 := &StarTable{}, &StarTable{}, &StarTable{}
	c.Put("a", t1)
	c.Put("b", t2)
	// Heat up "a" so "b" is the least-hit entry.
	for i := 0; i < 5; i++ {
		c.Get("a")
	}
	c.Put("c", t3)
	if c.Len() != 2 {
		t.Fatalf("cache overflow: %d entries", c.Len())
	}
	if c.Get("a") == nil {
		t.Error("hot entry evicted")
	}
	if c.Get("b") != nil {
		t.Error("cold entry survived")
	}
	hits, misses := c.Stats()
	if hits == 0 || misses == 0 {
		t.Errorf("stats not tracked: %d/%d", hits, misses)
	}
}

func TestCacheDecay(t *testing.T) {
	// Single shard: decay rides the shard's tick clock, so the keys
	// must share one shard for Get("new") traffic to age "old".
	c := NewCacheSharded(2, 0.5, 1)
	c.Put("old", &StarTable{})
	for i := 0; i < 10; i++ {
		c.Get("old")
	}
	c.Put("new", &StarTable{})
	// Let "old" decay by touching the clock through other keys.
	for i := 0; i < 60; i++ {
		c.Get("new")
	}
	c.Put("third", &StarTable{})
	if c.Get("old") != nil {
		t.Error("decayed entry should have been evicted despite early hits")
	}
}

func TestStarTableSize(t *testing.T) {
	g := randomGraph(12, 24, 5)
	q := query.New()
	u := q.AddNode("A")
	v := q.AddNode("B")
	q.AddEdge(u, v, 2)
	q.Focus = u
	m := NewMatcher(g, distindex.NewBFS(g), nil)
	res := m.Match(q)
	for _, inst := range res.Stars {
		if inst.Table.Size() < len(inst.Table.Rows) {
			t.Error("Size must count at least the rows")
		}
		for _, c := range inst.Cols {
			if c < 0 {
				t.Error("fresh tables must map all columns")
			}
		}
	}
}

func BenchmarkMatchTwoEdgeQuery(b *testing.B) {
	g := randomGraph(3000, 9000, 7)
	rng := rand.New(rand.NewSource(9))
	q := randomQuery(g, rng)
	m := NewMatcher(g, distindex.NewBFS(g), nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Match(q)
	}
}

func BenchmarkMatchCached(b *testing.B) {
	g := randomGraph(3000, 9000, 7)
	rng := rand.New(rand.NewSource(9))
	q := randomQuery(g, rng)
	m := NewMatcher(g, distindex.NewBFS(g), NewCache(128, 0.95))
	m.Match(q) // warm
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Match(q)
	}
}
