package match

import (
	"sort"

	"wqe/internal/graph"
	"wqe/internal/query"
)

// NbrEntry is one (match, distance) pair of a star-table cell.
type NbrEntry struct {
	V    graph.NodeID
	Dist int32
}

// StarRow is one row of a star table: a center match plus, per star
// edge, the matches of the other endpoint reachable within the edge's
// bound, plus the focus matches reachable within the augmented distance
// when the star carries an augmented edge.
type StarRow struct {
	Center graph.NodeID
	Nbrs   [][]NbrEntry // parallel to StarQuery.Edges
	Aug    []NbrEntry   // non-nil only when the star has an augmented edge
}

// StarTable is the materialization T_i(G) of one star query (§2.3).
//
// Occurrences of the focus node are stored label-filtered only: Q-Chase
// rewrites modify focus predicates constantly, and keeping the focus
// columns literal-agnostic lets one materialized table serve every
// rewrite that differs only in focus literals (the incremental
// verification of §2.3). FocusSupport applies the current focus
// literals at read time.
type StarTable struct {
	Star *StarQuery
	Rows []StarRow
	// focusIsCenter records whether rows are focus candidates.
	focusIsCenter bool
	// focusEdges are the star-edge indices whose Other is the focus.
	focusEdges []int
	// rowOf indexes Rows by center match (built at materialization, so
	// cached tables stay safe for concurrent readers).
	rowOf map[graph.NodeID]int
	// ColSigs are the per-column structural signatures (direction,
	// bound, endpoint signature). A cached table may have been built
	// from a structurally equal query whose edges were ordered
	// differently; consumers map their star edges to table columns by
	// signature.
	ColSigs []string
}

// Row returns the row for center match v, or nil.
func (t *StarTable) Row(v graph.NodeID) *StarRow {
	if i, ok := t.rowOf[v]; ok {
		return &t.Rows[i]
	}
	return nil
}

// buildStarTable materializes a star over g: one row per center
// candidate whose every star edge has at least one reachable candidate
// of the other endpoint. Focus positions are filtered by label only
// (see StarTable).
func buildStarTable(g *graph.Graph, q *query.Query, s *StarQuery) *StarTable {
	t := &StarTable{Star: s, focusIsCenter: s.Center == q.Focus}
	for i, e := range s.Edges {
		if e.Other == q.Focus {
			t.focusEdges = append(t.focusEdges, i)
		}
	}
	// isCand filters a node for pattern node u via compiled predicates;
	// the focus is filtered by label only.
	focusLabel := q.Nodes[q.Focus].Label
	focusLabelID, focusLabelOK := g.Labels.Lookup(focusLabel)
	checks := make([]query.NodeCheck, len(q.Nodes))
	for u := range q.Nodes {
		checks[u] = q.Check(g, query.NodeID(u))
	}
	isCand := func(u query.NodeID, v graph.NodeID) bool {
		if u == q.Focus {
			return focusLabel == "" || (focusLabelOK && g.LabelID(v) == focusLabelID)
		}
		return checks[u].Candidate(g, v)
	}

	var centerCands []graph.NodeID
	if t.focusIsCenter {
		centerCands = g.NodesByLabel(focusLabel)
	} else {
		centerCands = q.Candidates(g, s.Center)
	}

	maxOut, maxIn := 0, 0
	for _, e := range s.Edges {
		if e.Out && e.Bound > maxOut {
			maxOut = e.Bound
		}
		if !e.Out && e.Bound > maxIn {
			maxIn = e.Bound
		}
	}

rows:
	for _, vc := range centerCands {
		var ballOut, ballIn []graph.NodeDist
		if maxOut > 0 {
			ballOut = g.Ball(vc, maxOut, graph.Forward)
		}
		if maxIn > 0 {
			ballIn = g.Ball(vc, maxIn, graph.Backward)
		}
		row := StarRow{Center: vc, Nbrs: make([][]NbrEntry, len(s.Edges))}
		for i, e := range s.Edges {
			ball := ballOut
			if !e.Out {
				ball = ballIn
			}
			var entries []NbrEntry
			for _, nd := range ball {
				if nd.D == 0 || int(nd.D) > e.Bound {
					continue
				}
				if isCand(e.Other, nd.V) {
					entries = append(entries, NbrEntry{V: nd.V, Dist: nd.D})
				}
			}
			if len(entries) == 0 {
				continue rows // center match requires every star edge matched
			}
			sort.Slice(entries, func(a, b int) bool { return entries[a].V < entries[b].V })
			row.Nbrs[i] = entries
		}
		if !s.HasFocus && s.AugDist > 0 {
			aug := g.Ball(vc, s.AugDist, graph.Both)
			for _, nd := range aug {
				if nd.D == 0 {
					continue
				}
				if isCand(q.Focus, nd.V) {
					row.Aug = append(row.Aug, NbrEntry{V: nd.V, Dist: nd.D})
				}
			}
			if len(row.Aug) == 0 {
				continue rows // no focus candidate near this center match
			}
			sort.Slice(row.Aug, func(a, b int) bool { return row.Aug[a].V < row.Aug[b].V })
		}
		t.Rows = append(t.Rows, row)
	}
	t.rowOf = make(map[graph.NodeID]int, len(t.Rows))
	for i := range t.Rows {
		t.rowOf[t.Rows[i].Center] = i
	}
	for _, e := range s.Edges {
		t.ColSigs = append(t.ColSigs, edgeSig(q, e))
	}
	return t
}

// FocusSupport returns the focus candidates this table supports under
// the query's current focus literals: nodes appearing at a focus
// position of some row and satisfying every focus literal. A nil result
// means the star is disconnected from the focus and supports all
// candidates.
func (t *StarTable) FocusSupport(g *graph.Graph, q *query.Query) map[graph.NodeID]bool {
	s := t.Star
	if !s.HasFocus && s.AugDist == 0 {
		return nil
	}
	check := q.Check(g, q.Focus)
	// Memoize per-node verdicts: hub-heavy tables repeat focus entries
	// across many rows.
	verdict := map[graph.NodeID]bool{}
	pass := func(v graph.NodeID) bool {
		if ok, seen := verdict[v]; seen {
			return ok
		}
		ok := check.Candidate(g, v)
		verdict[v] = ok
		return ok
	}
	support := map[graph.NodeID]bool{}
	for _, row := range t.Rows {
		switch {
		case t.focusIsCenter:
			// Center rows must additionally satisfy the focus literals.
			if pass(row.Center) {
				support[row.Center] = true
			}
		case len(t.focusEdges) > 0:
			for _, ei := range t.focusEdges {
				for _, en := range row.Nbrs[ei] {
					if !support[en.V] && pass(en.V) {
						support[en.V] = true
					}
				}
			}
		default:
			for _, en := range row.Aug {
				if !support[en.V] && pass(en.V) {
					support[en.V] = true
				}
			}
		}
	}
	return support
}

// Size returns the number of cells in the table, the |Q.S(G)| measure
// used in the delay-time analysis.
func (t *StarTable) Size() int {
	n := 0
	for _, r := range t.Rows {
		n++
		for _, col := range r.Nbrs {
			n += len(col)
		}
		n += len(r.Aug)
	}
	return n
}
