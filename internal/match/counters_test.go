package match

import "testing"

// TestCountersFullSnapshot pins the Counters snapshot the serving
// layer's /stats endpoint reports: every counter in the set moves when
// its event happens, and the snapshot agrees with the legacy Stats
// pair. A capacity-1 single-shard cache makes evictions deterministic.
func TestCountersFullSnapshot(t *testing.T) {
	c := NewCacheSharded(1, 0.95, 1)

	if got := c.Counters(); got != (CacheCounters{}) {
		t.Fatalf("fresh cache counters = %+v, want all zero", got)
	}

	c.Put("a", &StarTable{}) // miss-free insert, 1 tick
	if c.Get("a") == nil {   // hit
		t.Fatal("a vanished")
	}
	if c.Get("b") != nil { // miss
		t.Fatal("phantom entry b")
	}
	c.Put("b", &StarTable{}) // capacity 1: must evict a
	if c.Get("a") != nil {   // miss (evicted)
		t.Fatal("a survived past capacity")
	}

	got := c.Counters()
	want := CacheCounters{Hits: 1, Misses: 2, Ticks: 5, Size: 1, Evictions: 1}
	if got != want {
		t.Fatalf("counters = %+v, want %+v", got, want)
	}
	if h, m := c.Stats(); h != got.Hits || m != got.Misses {
		t.Fatalf("Stats (%d, %d) disagrees with Counters %+v", h, m, got)
	}
	if c.Ticks() != got.Ticks {
		t.Fatalf("Ticks %d disagrees with Counters %+v", c.Ticks(), got)
	}
}
