package match

import (
	"fmt"
	"sync"
	"testing"

	"wqe/internal/graph"
	"wqe/internal/query"
)

// TestMatchConcurrentSharedMatcher runs Match from many goroutines over
// one shared Matcher and Cache — the exact sharing pattern the parallel
// chase engines use. Run under -race it proves the cache lock
// discipline and the singleflight handoff dynamically; the answers are
// additionally checked byte-identical to a sequential baseline.
func TestMatchConcurrentSharedMatcher(t *testing.T) {
	const (
		workers = 8
		rounds  = 50
	)
	g, q := keyFixture()
	// Query variants with different focus predicates share star tables
	// (focus columns are label-only), maximizing cache interaction.
	variants := []*query.Query{q}
	for _, bound := range []float64{150, 200, 300} {
		v := q.Clone()
		v.Nodes[v.Focus].Literals = []query.Literal{
			{Attr: "price", Op: graph.LE, Val: graph.N(bound)},
		}
		variants = append(variants, v)
	}

	baseline := make([]string, len(variants))
	seqM := NewMatcher(g, fixedDist{g}, NewCache(64, 0.95))
	for i, v := range variants {
		baseline[i] = fmt.Sprintf("%v", seqM.Match(v).Answer)
	}

	m := NewMatcher(g, fixedDist{g}, NewCache(64, 0.95))
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				vi := (w + i) % len(variants)
				got := fmt.Sprintf("%v", m.Match(variants[vi]).Answer)
				if got != baseline[vi] {
					select {
					case errs <- fmt.Sprintf("variant %d: concurrent answer %s, sequential %s", vi, got, baseline[vi]):
					default:
					}
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	if hits, misses := m.Cache.Stats(); hits == 0 || misses == 0 {
		t.Fatalf("stress run exercised no cache traffic (hits=%d misses=%d)", hits, misses)
	}
}
