package match

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// maxDecayAge caps the exponent of the closed-form hit decay. At the
// default decay 0.95, 0.95^600 ≈ 4e-14 — far below one hit — so any
// larger age flushes the hit count outright and math.Pow never sees
// extreme exponents.
const maxDecayAge = 1 << 12

// Cache is the global star-view cache of §5.2, lock-striped so that the
// cross-question batch engine's workers do not serialize on one mutex.
// The star key is hashed (FNV-1a) onto one of a power-of-two number of
// shards; each shard owns its own mutex, tick counter, entry map, and
// in-flight singleflight table, so two workers touching different stars
// contend only when their keys land on the same stripe.
//
// Entries are keyed by the structural star key; each use bumps a hit
// counter that decays with a per-shard time factor, and when a shard is
// full the least-hit entry *of that shard* is evicted (ties broken on
// the smallest key, so eviction is deterministic). Per-shard eviction
// preserves the engine's byte-identical-output guarantee: a cached star
// table is a pure function of its key, so cache organization can only
// change which tables get rebuilt — never what a table contains — and
// rewrite ranking never reads cache statistics.
//
// Concurrent misses on the same key are collapsed per shard by
// GetOrBuild: the first caller builds the table while the rest block on
// the in-flight build, so a beam level fanning out over near-identical
// rewrites materializes each star once instead of once per worker.
//
// Global hit/miss/tick/size statistics live in atomic counters, so
// Stats and Len never touch a shard mutex.
type Cache struct {
	// shards has power-of-two length; mask == len(shards)-1.
	shards []cacheShard
	mask   uint32

	hits      atomic.Int64
	misses    atomic.Int64
	ticks     atomic.Int64
	size      atomic.Int64
	evictions atomic.Int64
	weight    atomic.Int64
	rejects   atomic.Int64
}

// cacheShard is one stripe of the cache: an independent decaying map
// with its own lock, logical clock, and singleflight table.
type cacheShard struct {
	// cap, weightCap, and decay are immutable after construction.
	// weightCap bounds the shard's total resident entry weight
	// (StarTable.Size cells); 0 means count-capacity only.
	cap       int
	weightCap int
	decay     float64

	// mu guards every mutable field below.
	mu       sync.Mutex
	tick     int64                  // guarded by mu
	weight   int64                  // guarded by mu; resident entry weight
	entries  map[string]*cacheEntry // guarded by mu
	inflight map[string]*flight     // guarded by mu
}

type cacheEntry struct {
	table    *StarTable
	weight   int64
	hits     float64
	lastTick int64
}

// flight is one in-progress star-table build other callers can wait on.
// table and failed are written exactly once, before done is closed;
// waiters read them only after <-done, so the handoff is race-free
// without a lock. failed marks a build that panicked: its waiters must
// not trust table and instead retry with a fresh flight.
type flight struct {
	done   chan struct{}
	table  *StarTable
	failed bool
}

// DefaultShards is the shard count used when none is requested:
// nextPow2(4×GOMAXPROCS). Four stripes per logical CPU keeps the
// probability of two concurrently active workers hashing onto the same
// stripe low without inflating per-shard bookkeeping.
func DefaultShards() int {
	return nextPow2(4 * runtime.GOMAXPROCS(0))
}

// nextPow2 returns the smallest power of two ≥ n (and ≥ 1).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// NewCache returns a star-view cache holding at most capacity tables,
// striped over DefaultShards() shards. The decay factor
// (0 < decay ≤ 1) halves stale hit counts roughly every 1/(1−decay)
// uses; 0.95 is a good default.
func NewCache(capacity int, decay float64) *Cache {
	return NewCacheSharded(capacity, decay, 0)
}

// NewCacheSharded is NewCache with an explicit shard count: shards ≤ 0
// means DefaultShards(), anything else is rounded up to the next power
// of two (1 gives the un-striped cache of earlier revisions). The
// capacity splits as capacity/N per shard with the remainder going to
// the low shards; every shard holds at least one table, so the
// effective total capacity is max(capacity, N).
func NewCacheSharded(capacity int, decay float64, shards int) *Cache {
	return NewCacheWeighted(capacity, decay, shards, 0)
}

// NewCacheWeighted is NewCacheSharded with a total weight budget on top
// of the entry-count capacity. An entry's weight is its table's cell
// count (StarTable.Size) — the actual memory driver — so one huge star
// view cannot evict a shard's whole working set of small tables:
// entries heavier than half a shard's budget are never admitted at all
// (the build still returns its table to the caller; it just isn't
// cached), and admitting a heavy entry evicts least-hit entries only
// until the budget fits. weightBudget ≤ 0 disables weight accounting
// (pure count capacity, the previous behavior). The budget splits
// across shards like the count capacity does, with a floor of one
// budget unit so no shard degrades to unlimited.
func NewCacheWeighted(capacity int, decay float64, shards, weightBudget int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	if decay <= 0 || decay > 1 {
		decay = 0.95
	}
	if shards <= 0 {
		shards = DefaultShards()
	}
	if weightBudget < 0 {
		weightBudget = 0
	}
	shards = nextPow2(shards)
	c := &Cache{
		shards: make([]cacheShard, shards),
		mask:   uint32(shards - 1),
	}
	base, rem := capacity/shards, capacity%shards
	wbase, wrem := weightBudget/shards, weightBudget%shards
	for i := range c.shards {
		sc := base
		if i < rem {
			sc++
		}
		if sc < 1 {
			sc = 1
		}
		wc := wbase
		if i < wrem {
			wc++
		}
		if weightBudget > 0 && wc < 1 {
			wc = 1
		}
		c.shards[i] = cacheShard{
			cap:       sc,
			weightCap: wc,
			decay:     decay,
			entries:   map[string]*cacheEntry{},
			inflight:  map[string]*flight{},
		}
	}
	return c
}

// Shards returns the cache's shard count (a power of two).
func (c *Cache) Shards() int { return len(c.shards) }

// shardFor maps a star key onto its owning shard with the 32-bit
// FNV-1a hash (inlined: the hash/fnv wrapper would allocate a hasher
// and a byte-slice conversion on every lookup).
func (c *Cache) shardFor(key string) *cacheShard {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return &c.shards[h&c.mask]
}

// Get returns the cached star table for key, bumping its decayed hit
// count, or nil.
func (c *Cache) Get(key string) *StarTable {
	c.ticks.Add(1)
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tick++
	e, ok := s.entries[key]
	if !ok {
		c.misses.Add(1)
		return nil
	}
	c.hits.Add(1)
	s.bumpLocked(e)
	return e.table
}

// GetOrBuild returns the table for key, building it with build on a
// miss. Concurrent callers missing on the same key share one build: the
// first caller runs build (outside any cache lock), the rest block
// until it finishes and return the same table. Every sharing caller is
// still counted as a miss — they did miss; the singleflight only
// de-duplicates the work.
//
// A panicking build does not poison the key: runFlight's deferred
// cleanup marks the flight failed, closes it, removes the in-flight
// entry, and lets the panic continue to the builder's caller, while
// blocked waiters wake and retry with a fresh flight (the first
// retrier becomes the new builder). Waiters therefore always complete
// — or inherit a panic from their own build attempt, never someone
// else's.
func (c *Cache) GetOrBuild(key string, build func() *StarTable) *StarTable {
	s := c.shardFor(key)
	for {
		t, f, owner := s.lookup(c, key)
		switch {
		case t != nil:
			return t
		case owner:
			return s.runFlight(c, key, f, build)
		default:
			<-f.done
			if !f.failed {
				return f.table
			}
			// The builder panicked; race for a fresh flight.
		}
	}
}

// lookup is GetOrBuild's locked phase: a hit returns the table; a miss
// returns the flight to wait on, or a freshly registered flight with
// owner=true when this caller must run the build.
func (s *cacheShard) lookup(c *Cache, key string) (t *StarTable, f *flight, owner bool) {
	c.ticks.Add(1)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tick++
	if e, ok := s.entries[key]; ok {
		c.hits.Add(1)
		s.bumpLocked(e)
		return e.table, nil, false
	}
	c.misses.Add(1)
	if in, ok := s.inflight[key]; ok {
		return nil, in, false
	}
	f = &flight{done: make(chan struct{})}
	s.inflight[key] = f
	return nil, f, true
}

// runFlight executes one singleflight build (outside the shard lock)
// and publishes its outcome: on success the flight resolves to the
// table and the entry is inserted; on panic the deferred handler marks
// the flight failed, closes it, and deletes the in-flight entry —
// waking every waiter — before the panic continues to the caller.
// Without that cleanup a panicking build would leave the flight open
// and the key's waiters blocked forever.
func (s *cacheShard) runFlight(c *Cache, key string, f *flight, build func() *StarTable) *StarTable {
	committed := false
	defer func() {
		if committed {
			return
		}
		f.failed = true
		close(f.done)
		s.mu.Lock()
		delete(s.inflight, key)
		s.mu.Unlock()
	}()

	t := build()

	f.table = t
	close(f.done)
	s.mu.Lock()
	delete(s.inflight, key)
	s.tick++
	s.putLocked(c, key, t)
	s.mu.Unlock()
	committed = true
	return t
}

// bumpLocked applies the time decay then counts one hit. The decay is
// the closed form decay^age over the shard's own tick clock — a
// per-tick loop here would spin for the whole age under the lock, which
// after a long miss streak (ticks advance on every shard access, hits
// or not) meant millions of iterations for a single bump. The caller
// must hold s.mu.
func (s *cacheShard) bumpLocked(e *cacheEntry) {
	if age := s.tick - e.lastTick; age > maxDecayAge {
		e.hits = 0 // decay^age underflows any meaningful hit mass
	} else if age > 0 {
		e.hits *= math.Pow(s.decay, float64(age))
	}
	e.hits++
	e.lastTick = s.tick
}

// Put stores a star table, evicting the owning shard's least-hit entry
// when that shard is full.
func (c *Cache) Put(key string, t *StarTable) {
	c.ticks.Add(1)
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tick++
	s.putLocked(c, key, t)
}

// putLocked inserts or refreshes an entry, evicting the shard's
// least-hit entries when the shard is over its count capacity or weight
// budget. Equal hit counts tie-break on the smallest key: the scan runs
// in map order, and without the tie-break a full shard of equal-hit
// entries would evict a randomly chosen one, making cache contents —
// and downstream hit/miss stats — differ between identical runs.
// Eviction is deterministic per shard, and the shard a key lives on is
// a pure function of the key, so whole-cache contents are reproducible
// too. The caller must hold s.mu.
func (s *cacheShard) putLocked(c *Cache, key string, t *StarTable) {
	w := int64(t.Size())
	oversized := s.weightCap > 0 && w > int64(s.weightCap)/2
	if e, ok := s.entries[key]; ok {
		if oversized {
			// The refresh grew past the admission bound: a table this
			// heavy is never resident, so drop the entry rather than
			// letting one key hold most of the shard's budget.
			s.removeLocked(c, key, e)
			c.rejects.Add(1)
			return
		}
		s.weight += w - e.weight
		c.weight.Add(w - e.weight)
		e.table = t
		e.weight = w
		s.bumpLocked(e)
		s.shrinkToWeightLocked(c, key, 0)
		return
	}
	if oversized {
		// Weight-based admission: the build's caller keeps the table;
		// the shard's working set of smaller tables stays resident.
		c.rejects.Add(1)
		return
	}
	if len(s.entries) >= s.cap {
		s.evictWorstLocked(c, "")
	}
	s.shrinkToWeightLocked(c, "", w)
	s.entries[key] = &cacheEntry{table: t, weight: w, hits: 1, lastTick: s.tick}
	s.weight += w
	c.weight.Add(w)
	c.size.Add(1)
}

// shrinkToWeightLocked evicts least-hit entries (never `keep`) until the
// shard's resident weight plus incoming fits the weight budget. A no-op
// when weight accounting is off. The caller must hold s.mu.
func (s *cacheShard) shrinkToWeightLocked(c *Cache, keep string, incoming int64) {
	if s.weightCap == 0 {
		return
	}
	// Terminates: every admitted entry (and the incoming one) weighs at
	// most half the budget, and evictWorstLocked reports false once
	// nothing evictable remains.
	for s.weight+incoming > int64(s.weightCap) {
		if !s.evictWorstLocked(c, keep) {
			return
		}
	}
}

// evictWorstLocked evicts the least-hit entry, skipping `exclude`;
// reports whether anything was evicted. Ties break on the smallest key
// so the choice is deterministic. The caller must hold s.mu.
func (s *cacheShard) evictWorstLocked(c *Cache, exclude string) bool {
	worstKey := ""
	worst := 0.0
	first := true
	//lint:ignore detsource eviction scans the whole shard map and tie-breaks on smallest key, so order cannot matter
	for k, e := range s.entries {
		if k == exclude {
			continue
		}
		switch {
		case first:
			worstKey, worst, first = k, e.hits, false
		case e.hits < worst:
			worstKey, worst = k, e.hits
		case e.hits > worst:
		case k < worstKey: // equal hits: smallest key loses
			worstKey = k
		}
	}
	if first {
		return false
	}
	s.removeLocked(c, worstKey, s.entries[worstKey])
	c.evictions.Add(1)
	return true
}

// removeLocked deletes one resident entry and settles the weight and
// size accounting. The caller must hold s.mu.
func (s *cacheShard) removeLocked(c *Cache, key string, e *cacheEntry) {
	delete(s.entries, key)
	s.weight -= e.weight
	c.weight.Add(-e.weight)
	c.size.Add(-1)
}

// Len returns the number of cached tables, from the atomic size
// counter — it never takes a shard lock.
func (c *Cache) Len() int {
	return int(c.size.Load())
}

// Stats returns cumulative hit and miss counts, from the atomic
// counters — it never takes a shard lock. The counts are exact; only
// their split between concurrent callers racing on one key is
// timing-dependent (and rewrite ranking never reads them).
func (c *Cache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// Ticks returns the total number of cache accesses (Get, GetOrBuild
// lookups, and Put calls) across all shards.
func (c *Cache) Ticks() int64 {
	return c.ticks.Load()
}

// CacheCounters is the cache's full atomic counter set, snapshot
// lock-free by Counters. Hits/Misses/Ticks/Evictions are cumulative;
// Size is the current resident table count. The counters are
// observability only — rewrite ranking never reads them — so exposing
// them (e.g. through a server's /stats endpoint) cannot perturb
// byte-identical output.
type CacheCounters struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Ticks     int64 `json:"ticks"`
	Size      int64 `json:"size"`
	Evictions int64 `json:"evictions"`
	// Weight is the current resident entry weight (StarTable.Size cells
	// across all shards); AdmissionRejects counts tables denied
	// residency by weight-based admission. Both stay zero when the
	// cache runs without a weight budget.
	Weight           int64 `json:"weight"`
	AdmissionRejects int64 `json:"admission_rejects"`
}

// Counters snapshots every cache counter without taking a shard lock.
// The fields are loaded individually, so a snapshot taken under
// concurrent traffic is per-counter exact but not a single atomic
// cross-counter instant — fine for stats, meaningless to diff against
// another snapshot taken mid-flight.
func (c *Cache) Counters() CacheCounters {
	return CacheCounters{
		Hits:             c.hits.Load(),
		Misses:           c.misses.Load(),
		Ticks:            c.ticks.Load(),
		Size:             c.size.Load(),
		Evictions:        c.evictions.Load(),
		Weight:           c.weight.Load(),
		AdmissionRejects: c.rejects.Load(),
	}
}

// Weight returns the resident entry weight across all shards, from the
// atomic counter — it never takes a shard lock. Always zero without a
// weight budget.
func (c *Cache) Weight() int64 { return c.weight.Load() }
