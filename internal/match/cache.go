package match

import (
	"math"
	"sync"
)

// maxDecayAge caps the exponent of the closed-form hit decay. At the
// default decay 0.95, 0.95^600 ≈ 4e-14 — far below one hit — so any
// larger age flushes the hit count outright and math.Pow never sees
// extreme exponents.
const maxDecayAge = 1 << 12

// Cache is the global star-view cache of §5.2. Entries are keyed by the
// structural star key; each use bumps a hit counter that decays with a
// time factor, and when the cache is full the least-hit entry is
// evicted (ties broken on the smallest key, so eviction is
// deterministic).
//
// Concurrent misses on the same key are collapsed by GetOrBuild: the
// first caller builds the table while the rest block on the in-flight
// build, so a beam level fanning out over near-identical rewrites
// materializes each star once instead of once per worker.
type Cache struct {
	// mu guards every mutable field below; cap and decay are immutable
	// after construction.
	mu    sync.Mutex
	cap   int
	decay float64

	tick     int64                  // guarded by mu
	entries  map[string]*cacheEntry // guarded by mu
	inflight map[string]*flight     // guarded by mu

	hits, misses int64 // guarded by mu
}

type cacheEntry struct {
	table    *StarTable
	hits     float64
	lastTick int64
}

// flight is one in-progress star-table build other callers can wait on.
// table is written exactly once, before done is closed; waiters read it
// only after <-done, so the handoff is race-free without a lock.
type flight struct {
	done  chan struct{}
	table *StarTable
}

// NewCache returns a star-view cache holding at most capacity tables.
// The decay factor (0 < decay ≤ 1) halves stale hit counts roughly
// every 1/(1−decay) uses; 0.95 is a good default.
func NewCache(capacity int, decay float64) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	if decay <= 0 || decay > 1 {
		decay = 0.95
	}
	return &Cache{
		cap:      capacity,
		decay:    decay,
		entries:  map[string]*cacheEntry{},
		inflight: map[string]*flight{},
	}
}

// Get returns the cached star table for key, bumping its decayed hit
// count, or nil.
func (c *Cache) Get(key string) *StarTable {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tick++
	e, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil
	}
	c.hits++
	c.bumpLocked(e)
	return e.table
}

// GetOrBuild returns the table for key, building it with build on a
// miss. Concurrent callers missing on the same key share one build: the
// first caller runs build (outside the cache lock), the rest block
// until it finishes and return the same table. Every sharing caller is
// still counted as a miss — they did miss; the singleflight only
// de-duplicates the work.
func (c *Cache) GetOrBuild(key string, build func() *StarTable) *StarTable {
	c.mu.Lock()
	c.tick++
	if e, ok := c.entries[key]; ok {
		c.hits++
		c.bumpLocked(e)
		t := e.table
		c.mu.Unlock()
		return t
	}
	c.misses++
	if f, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		<-f.done
		return f.table
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[key] = f
	c.mu.Unlock()

	t := build()

	f.table = t
	close(f.done)
	c.mu.Lock()
	delete(c.inflight, key)
	c.tick++
	c.putLocked(key, t)
	c.mu.Unlock()
	return t
}

// bumpLocked applies the time decay then counts one hit. The decay is
// the closed form decay^age — a per-tick loop here would spin for the
// whole age under the lock, which after a long miss streak (ticks
// advance on every access, hits or not) meant millions of iterations
// for a single bump. The caller must hold c.mu.
func (c *Cache) bumpLocked(e *cacheEntry) {
	if age := c.tick - e.lastTick; age > maxDecayAge {
		e.hits = 0 // decay^age underflows any meaningful hit mass
	} else if age > 0 {
		e.hits *= math.Pow(c.decay, float64(age))
	}
	e.hits++
	e.lastTick = c.tick
}

// Put stores a star table, evicting the least-hit entry when full.
func (c *Cache) Put(key string, t *StarTable) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tick++
	c.putLocked(key, t)
}

// putLocked inserts or refreshes an entry, evicting the least-hit entry
// when full. Equal hit counts tie-break on the smallest key: the scan
// runs in map order, and without the tie-break a full cache of
// equal-hit entries would evict a randomly chosen one, making cache
// contents — and downstream hit/miss stats — differ between identical
// runs. The caller must hold c.mu.
func (c *Cache) putLocked(key string, t *StarTable) {
	if e, ok := c.entries[key]; ok {
		e.table = t
		c.bumpLocked(e)
		return
	}
	if len(c.entries) >= c.cap {
		worstKey := ""
		worst := 0.0
		first := true
		//lint:ignore detsource eviction scans the whole map and tie-breaks on smallest key, so order cannot matter
		for k, e := range c.entries {
			switch {
			case first:
				worstKey, worst, first = k, e.hits, false
			case e.hits < worst:
				worstKey, worst = k, e.hits
			case e.hits > worst:
			case k < worstKey: // equal hits: smallest key loses
				worstKey = k
			}
		}
		delete(c.entries, worstKey)
	}
	c.entries[key] = &cacheEntry{table: t, hits: 1, lastTick: c.tick}
}

// Len returns the number of cached tables.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns cumulative hit and miss counts.
func (c *Cache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
