package match

import "sync"

// Cache is the global star-view cache of §5.2. Entries are keyed by the
// structural star key; each use bumps a hit counter that decays with a
// time factor, and when the cache is full the least-hit entry is
// evicted.
type Cache struct {
	// mu guards every mutable field below; cap and decay are immutable
	// after construction.
	mu    sync.Mutex
	cap   int
	decay float64

	tick    int64                  // guarded by mu
	entries map[string]*cacheEntry // guarded by mu

	hits, misses int64 // guarded by mu
}

type cacheEntry struct {
	table    *StarTable
	hits     float64
	lastTick int64
}

// NewCache returns a star-view cache holding at most capacity tables.
// The decay factor (0 < decay ≤ 1) halves stale hit counts roughly
// every 1/(1−decay) uses; 0.95 is a good default.
func NewCache(capacity int, decay float64) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	if decay <= 0 || decay > 1 {
		decay = 0.95
	}
	return &Cache{cap: capacity, decay: decay, entries: map[string]*cacheEntry{}}
}

// Get returns the cached star table for key, bumping its decayed hit
// count, or nil.
func (c *Cache) Get(key string) *StarTable {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tick++
	e, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil
	}
	c.hits++
	c.bumpLocked(e)
	return e.table
}

// bumpLocked applies the time decay then counts one hit. The caller
// must hold c.mu.
func (c *Cache) bumpLocked(e *cacheEntry) {
	age := c.tick - e.lastTick
	for i := int64(0); i < age && e.hits > 1e-6; i++ {
		e.hits *= c.decay
	}
	e.hits++
	e.lastTick = c.tick
}

// Put stores a star table, evicting the least-hit entry when full.
func (c *Cache) Put(key string, t *StarTable) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tick++
	if e, ok := c.entries[key]; ok {
		e.table = t
		c.bumpLocked(e)
		return
	}
	if len(c.entries) >= c.cap {
		worstKey := ""
		worst := 0.0
		first := true
		for k, e := range c.entries {
			if first || e.hits < worst {
				worstKey, worst, first = k, e.hits, false
			}
		}
		delete(c.entries, worstKey)
	}
	c.entries[key] = &cacheEntry{table: t, hits: 1, lastTick: c.tick}
}

// Len returns the number of cached tables.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns cumulative hit and miss counts.
func (c *Cache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
