package match

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
)

// TestShardCountResolution pins the shard-count rules: ≤0 means
// DefaultShards(), other values round up to the next power of two.
func TestShardCountResolution(t *testing.T) {
	if got := NewCache(64, 0.95).Shards(); got != DefaultShards() {
		t.Fatalf("NewCache shards = %d, want DefaultShards() = %d", got, DefaultShards())
	}
	for _, tc := range []struct{ in, want int }{
		{-1, DefaultShards()}, {1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {16, 16}, {17, 32},
	} {
		if got := NewCacheSharded(64, 0.95, tc.in).Shards(); got != tc.want {
			t.Errorf("NewCacheSharded(shards=%d) = %d shards, want %d", tc.in, got, tc.want)
		}
	}
}

// TestShardCapacitySplit checks capacity/N per shard with the remainder
// on the low shards, and the ≥1-per-shard floor.
func TestShardCapacitySplit(t *testing.T) {
	c := NewCacheSharded(10, 0.95, 4)
	want := []int{3, 3, 2, 2} // 10/4 = 2 rem 2 → shards 0,1 get the extra
	for i := range c.shards {
		if c.shards[i].cap != want[i] {
			t.Errorf("shard %d cap = %d, want %d", i, c.shards[i].cap, want[i])
		}
	}
	// Capacity below the shard count: every shard still holds one table.
	tiny := NewCacheSharded(2, 0.95, 8)
	for i := range tiny.shards {
		if tiny.shards[i].cap != 1 {
			t.Errorf("tiny shard %d cap = %d, want the floor of 1", i, tiny.shards[i].cap)
		}
	}
}

// TestShardMappingStable checks the FNV-1a shard mapping is a pure
// function of the key and spreads a realistic star-key population over
// every stripe.
func TestShardMappingStable(t *testing.T) {
	c := NewCacheSharded(1024, 0.95, 4)
	seen := make(map[*cacheShard]bool)
	for i := 0; i < 256; i++ {
		key := fmt.Sprintf("g1|star|c=phone|e%d>store@2", i)
		sh := c.shardFor(key)
		if c.shardFor(key) != sh {
			t.Fatalf("shard mapping for %q not stable", key)
		}
		seen[sh] = true
	}
	if len(seen) != 4 {
		t.Fatalf("256 star keys landed on %d of 4 shards; FNV-1a spread broken", len(seen))
	}
}

// TestShardedEvictionDeterministic is the sharded-eviction determinism
// gate: a 2-shard cache is filled to capacity by concurrent workers
// (equal-hit entries — each key inserted exactly once, never read), the
// overflow inserts then evict deterministically, and the evicted key
// set must be byte-identical across 10 seeded runs. Run under -race
// (make race) this also proves the per-shard lock discipline while the
// interleavings vary; determinism must hold anyway, because eviction
// scans a shard's map with the smallest-key tie-break and the shard a
// key lives on is a pure function of the key — the fill *order* never
// matters once the fill *set* is fixed.
func TestShardedEvictionDeterministic(t *testing.T) {
	const (
		capacity = 8
		shards   = 2
		fill     = capacity // fills both shards exactly to capacity
		overflow = 6
		workers  = 4
		runs     = 10
	)
	// Pick fill keys that land capacity/2 on each shard so the fill
	// phase itself never evicts (insertion order into a non-full shard
	// cannot change its final set).
	probe := NewCacheSharded(capacity, 0.95, shards)
	var fillKeys []string
	perShard := make(map[*cacheShard]int)
	for i := 0; len(fillKeys) < fill; i++ {
		k := fmt.Sprintf("fill-%03d", i)
		sh := probe.shardFor(k)
		if perShard[sh] < capacity/shards {
			perShard[sh]++
			fillKeys = append(fillKeys, k)
		}
	}
	overflowKeys := make([]string, overflow)
	for i := range overflowKeys {
		overflowKeys[i] = fmt.Sprintf("over-%03d", i)
	}

	victims := func(seed int) string {
		c := NewCacheSharded(capacity, 0.95, shards)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				// Each worker inserts a seeded, disjoint stripe of the fill
				// set; the interleaving across workers is up to the
				// scheduler.
				for i := w; i < len(fillKeys); i += workers {
					c.Put(fillKeys[(i+seed)%len(fillKeys)], &StarTable{})
				}
			}(w)
		}
		wg.Wait()
		if n := c.Len(); n != capacity {
			t.Fatalf("seed %d: fill phase holds %d entries, want %d (no evictions)", seed, n, capacity)
		}
		for _, k := range overflowKeys {
			c.Put(k, &StarTable{})
		}
		var evicted []string
		for _, k := range append(append([]string{}, fillKeys...), overflowKeys...) {
			sh := c.shardFor(k)
			sh.mu.Lock()
			_, present := sh.entries[k]
			sh.mu.Unlock()
			if !present {
				evicted = append(evicted, k)
			}
		}
		sort.Strings(evicted)
		return strings.Join(evicted, ",")
	}

	ref := victims(0)
	if ref == "" {
		t.Fatal("overflow inserts evicted nothing; the test exercises no eviction")
	}
	for seed := 1; seed < runs; seed++ {
		if got := victims(seed); got != ref {
			t.Fatalf("seed %d evicted {%s}, seed 0 evicted {%s}: sharded eviction is order-dependent", seed, got, ref)
		}
	}
}

// TestShardedStatsAtomic checks Len/Stats/Ticks hold exact aggregates
// across shards without locking: the counts must add up after a burst
// of cross-shard traffic.
func TestShardedStatsAtomic(t *testing.T) {
	c := NewCacheSharded(64, 0.95, 4)
	const keys = 32
	for i := 0; i < keys; i++ {
		c.Put(fmt.Sprintf("k%02d", i), &StarTable{})
	}
	if n := c.Len(); n != keys {
		t.Fatalf("Len = %d after %d distinct puts, want %d", n, keys, keys)
	}
	for i := 0; i < keys; i++ {
		if c.Get(fmt.Sprintf("k%02d", i)) == nil {
			t.Fatalf("k%02d missing", i)
		}
	}
	c.Get("absent")
	hits, misses := c.Stats()
	if hits != keys || misses != 1 {
		t.Fatalf("Stats = (%d, %d), want (%d, 1)", hits, misses, keys)
	}
	if ticks := c.Ticks(); ticks != int64(2*keys+1) {
		t.Fatalf("Ticks = %d, want %d", ticks, 2*keys+1)
	}
}

// TestSingleShardMatchesLegacySemantics pins that shards=1 reproduces
// the un-striped cache: whole-cache capacity, global smallest-key
// eviction, one singleflight table.
func TestSingleShardMatchesLegacySemantics(t *testing.T) {
	c := NewCacheSharded(3, 0.95, 1)
	for _, k := range []string{"c", "a", "b", "d"} {
		c.Put(k, &StarTable{})
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want capacity 3", c.Len())
	}
	if c.Get("a") != nil {
		t.Fatal("single-shard eviction should have dropped the smallest key \"a\"")
	}
}
