package match

import (
	"fmt"
	"testing"
)

// tableOfSize builds a star table whose Size() is exactly w cells.
func tableOfSize(w int) *StarTable {
	return &StarTable{Rows: make([]StarRow, w)}
}

func TestWeightAdmissionRejectsOversized(t *testing.T) {
	c := NewCacheWeighted(8, 0.95, 1, 10) // one shard, budget 10, admit ≤ 5
	c.Put("huge", tableOfSize(6))
	if c.Len() != 0 || c.Weight() != 0 {
		t.Fatalf("oversized table admitted: len=%d weight=%d", c.Len(), c.Weight())
	}
	if got := c.Counters().AdmissionRejects; got != 1 {
		t.Fatalf("AdmissionRejects = %d, want 1", got)
	}
	// The boundary case is admitted: weight 5 = budget/2.
	c.Put("edge", tableOfSize(5))
	if c.Len() != 1 || c.Weight() != 5 {
		t.Fatalf("half-budget table not admitted: len=%d weight=%d", c.Len(), c.Weight())
	}
}

func TestWeightAdmissionBuildStillReturnsTable(t *testing.T) {
	c := NewCacheWeighted(8, 0.95, 1, 10)
	builds := 0
	build := func() *StarTable { builds++; return tableOfSize(7) }
	if got := c.GetOrBuild("huge", build); got == nil || got.Size() != 7 {
		t.Fatalf("GetOrBuild must return the built table even when not admitted")
	}
	// Not resident: a second call builds again.
	if got := c.GetOrBuild("huge", build); got == nil || builds != 2 {
		t.Fatalf("oversized table should not be resident (builds=%d)", builds)
	}
}

// TestWeightEvictionDeterministic pins the weight-pressure eviction
// order: equal-hit entries fall smallest-key-first until the incoming
// entry fits, and a re-run of the same sequence reproduces the same
// resident set.
func TestWeightEvictionDeterministic(t *testing.T) {
	run := func() []string {
		c := NewCacheWeighted(64, 0.95, 1, 10)
		for _, k := range []string{"e", "c", "a", "d", "b"} {
			c.Put(k, tableOfSize(2)) // fills the budget exactly
		}
		if c.Weight() != 10 || c.Len() != 5 {
			t.Fatalf("setup: weight=%d len=%d", c.Weight(), c.Len())
		}
		c.Put("f", tableOfSize(4)) // needs 4 cells freed → two evictions
		var resident []string
		for _, k := range []string{"a", "b", "c", "d", "e", "f"} {
			if c.Get(k) != nil {
				resident = append(resident, k)
			}
		}
		return resident
	}
	first := run()
	// All entries entered with one hit; "a" and "b" are the smallest
	// keys, so they are the deterministic victims.
	want := []string{"c", "d", "e", "f"}
	if fmt.Sprint(first) != fmt.Sprint(want) {
		t.Fatalf("resident after weight eviction = %v, want %v", first, want)
	}
	if second := run(); fmt.Sprint(second) != fmt.Sprint(first) {
		t.Fatalf("weight eviction not reproducible: %v vs %v", second, first)
	}
}

func TestWeightRefreshAccounting(t *testing.T) {
	c := NewCacheWeighted(8, 0.95, 1, 10)
	c.Put("k", tableOfSize(2))
	c.Put("k", tableOfSize(4)) // refresh grows the entry
	if c.Len() != 1 || c.Weight() != 4 {
		t.Fatalf("after refresh: len=%d weight=%d, want 1/4", c.Len(), c.Weight())
	}
	c.Put("k", tableOfSize(6)) // refresh past the admission bound
	if c.Len() != 0 || c.Weight() != 0 {
		t.Fatalf("oversized refresh kept resident: len=%d weight=%d", c.Len(), c.Weight())
	}
	if got := c.Counters().AdmissionRejects; got != 1 {
		t.Fatalf("AdmissionRejects = %d, want 1", got)
	}
}

// TestWeightDisabledKeepsCountSemantics: the default weightBudget=0
// path must behave exactly like the unweighted cache (existing callers
// and tests rely on it).
func TestWeightDisabledKeepsCountSemantics(t *testing.T) {
	c := NewCacheSharded(2, 0.95, 1)
	c.Put("a", tableOfSize(1000))
	c.Put("b", tableOfSize(1000))
	if c.Len() != 2 {
		t.Fatalf("unweighted cache evicted on weight: len=%d", c.Len())
	}
	if w := c.Weight(); w != 2000 {
		t.Fatalf("Weight() = %d, want 2000 (accounting still tracked)", w)
	}
	if got := c.Counters().AdmissionRejects; got != 0 {
		t.Fatalf("AdmissionRejects = %d without a budget", got)
	}
}
