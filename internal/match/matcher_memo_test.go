package match

import (
	"math/rand"
	"testing"

	"wqe/internal/distindex"
	"wqe/internal/graph"
)

// countingIndex wraps a distance oracle and counts calls, so tests can
// prove the memo suppresses repeats and never escalates Within to an
// exact (unbounded) Dist.
type countingIndex struct {
	inner   distindex.Index
	dists   int
	withins int
}

func (c *countingIndex) Dist(s, t graph.NodeID) int {
	c.dists++
	return c.inner.Dist(s, t)
}

func (c *countingIndex) Within(s, t graph.NodeID, bound int) bool {
	c.withins++
	return c.inner.Within(s, t, bound)
}

// TestMemoWithinAgreesWithOracle drives memoWithin through a random
// mixed-bound query stream — repeats, bound walks up and down, both
// directions of each pair — and checks every answer against a fresh
// oracle. The up-and-down bound walks are the point: they land queries
// on either side of and inside the memo's certificate gap.
func TestMemoWithinAgreesWithOracle(t *testing.T) {
	g := randomGraph(20, 50, 13)
	oracle := distindex.NewBFS(g)
	m := NewMatcher(g, oracle, nil)
	v := m.vpool.Get().(*verifier)
	v.dmemo = map[int64]int32{}

	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 5000; i++ {
		s := graph.NodeID(rng.Intn(20))
		u := graph.NodeID(rng.Intn(20))
		bound := rng.Intn(8) - 1 // includes -1
		got := v.memoWithin(s, u, bound)
		want := oracle.Within(s, u, bound)
		if got != want {
			t.Fatalf("query %d: memoWithin(%d,%d,%d) = %v, oracle says %v",
				i, s, u, bound, got, want)
		}
	}
}

// TestMemoWithinSuppressesRepeats pins the memo's contract: an exact
// repeat never reaches the oracle, a bound above a proven-within bound
// (or below a proven-exceeded one) is answered from the certificate,
// and the exact Dist method is never called at all — on the BFS oracle
// an unbounded Dist would cost more than the bounded query it memoizes.
func TestMemoWithinSuppressesRepeats(t *testing.T) {
	g := randomGraph(20, 50, 13)
	ci := &countingIndex{inner: distindex.NewBFS(g)}
	m := NewMatcher(g, ci, nil)
	v := m.vpool.Get().(*verifier)
	v.dmemo = map[int64]int32{}

	// Find a pair at a finite distance ≥ 2 so both certificate sides
	// have room.
	oracle := distindex.NewBFS(g)
	var s, u graph.NodeID
	d := -1
	for a := 0; a < 20 && d < 0; a++ {
		for b := 0; b < 20; b++ {
			if dd := oracle.Dist(graph.NodeID(a), graph.NodeID(b)); dd >= 2 && dd < graph.Unreachable {
				s, u, d = graph.NodeID(a), graph.NodeID(b), dd
				break
			}
		}
	}
	if d < 0 {
		t.Fatal("test graph has no pair at distance ≥ 2")
	}

	if !v.memoWithin(s, u, d) {
		t.Fatalf("Within(%d,%d,%d) should hold at the exact distance", s, u, d)
	}
	if v.memoWithin(s, u, d-1) {
		t.Fatalf("Within(%d,%d,%d) should fail below the distance", s, u, d-1)
	}
	base := ci.withins
	if base != 2 {
		t.Fatalf("priming took %d oracle calls, want 2", base)
	}
	// Everything below is answerable from the two certificates:
	// bounds ≥ d are within, bounds ≤ d-1 are not.
	for i := 0; i < 10; i++ {
		if !v.memoWithin(s, u, d) || !v.memoWithin(s, u, d+1+i) {
			t.Fatal("certified-within bound answered wrong")
		}
		if v.memoWithin(s, u, d-1) || (d-2-i >= 0 && v.memoWithin(s, u, d-2-i)) {
			t.Fatal("certified-exceeded bound answered wrong")
		}
	}
	if ci.withins != base {
		t.Fatalf("memoized bounds still reached the oracle: %d extra calls", ci.withins-base)
	}
	if ci.dists != 0 {
		t.Fatalf("memo escalated to exact Dist %d times; it must only ever call Within", ci.dists)
	}
}

// TestMatchWithCountingOracle runs full Matches through the memo and
// checks (a) answers are unchanged from a memo-free baseline — the
// brute-force agreement test covers semantics, this one covers the
// plumbing — and (b) the exact Dist method is never used.
func TestMatchWithCountingOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := randomGraph(14, 30, 5)
	ci := &countingIndex{inner: distindex.NewBFS(g)}
	m := NewMatcher(g, ci, nil)
	ref := NewMatcher(g, distindex.NewBFS(g), nil)
	for trial := 0; trial < 60; trial++ {
		q := randomQuery(g, rng)
		if got, want := m.Match(q).Answer, ref.Match(q).Answer; !sameSet(got, want) {
			t.Fatalf("trial %d: counting-oracle answer %v, want %v", trial, got, want)
		}
	}
	if ci.dists != 0 {
		t.Fatalf("Match called exact Dist %d times; the verify path must stay bounded", ci.dists)
	}
}
