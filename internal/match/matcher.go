package match

import (
	"sort"
	"strconv"
	"strings"
	"sync"

	"wqe/internal/distindex"
	"wqe/internal/graph"
	"wqe/internal/query"
)

// Matcher evaluates pattern queries over one graph. A non-nil Cache
// makes repeated evaluation of similar queries (the Q-Chase workload)
// incremental: structurally unchanged stars are reused. Match is safe
// for concurrent use: the cache serializes its own state, in-flight
// star builds are shared via singleflight, and everything else Match
// touches is read-only after construction (warm the graph's lazy
// caches first; chase.NewWhy does).
type Matcher struct {
	G     *graph.Graph
	Dist  distindex.Index
	Cache *Cache

	// keyPrefix is the per-graph cache-key prefix ("g<uid>|"), hoisted
	// out of the per-star key construction on the Match hot path.
	keyPrefix string

	// vpool recycles verifiers (and all their scratch: order, maps,
	// per-depth constraint buffers, the distance memo) across Match
	// calls, so the per-question beam loop stops allocating a fresh
	// working set for every rewrite it evaluates.
	vpool sync.Pool
}

// NewMatcher returns a matcher over g using the given distance oracle
// and an optional star-view cache (nil disables caching).
func NewMatcher(g *graph.Graph, dist distindex.Index, cache *Cache) *Matcher {
	m := &Matcher{
		G:     g,
		Dist:  dist,
		Cache: cache,
		// The graph uid keeps one cache safe to share across graphs.
		keyPrefix: "g" + strconv.FormatUint(g.UID(), 10) + "|",
	}
	m.vpool.New = func() interface{} { return &verifier{m: m} }
	return m
}

// StarInstance binds one star of the current query to its materialized
// table. The table may come from the cache and have been built from a
// structurally equal query whose edges were ordered differently; Cols
// maps the current star's edge positions to table columns.
type StarInstance struct {
	Star  *StarQuery
	Table *StarTable
	Cols  []int
}

// Result is one query evaluation: the star view used, per-node
// candidate sets, and the answer Q(G) (the matches of the focus).
type Result struct {
	Query      *query.Query
	Stars      []StarInstance
	Candidates [][]graph.NodeID
	Answer     []graph.NodeID // sorted
}

// Has reports whether v ∈ Q(G).
func (r *Result) Has(v graph.NodeID) bool {
	i := sort.Search(len(r.Answer), func(i int) bool { return r.Answer[i] >= v })
	return i < len(r.Answer) && r.Answer[i] == v
}

// Match evaluates q: it decomposes q into star views, materializes (or
// fetches cached) star tables, prunes focus candidates to those
// supported by every star, and verifies each survivor with a
// backtracking search over the star tables (§5.2); BFS fills in only
// where no star column applies.
func (m *Matcher) Match(q *query.Query) *Result {
	res := &Result{
		Query:      q,
		Candidates: make([][]graph.NodeID, len(q.Nodes)),
	}
	for u := range q.Nodes {
		res.Candidates[u] = q.Candidates(m.G, query.NodeID(u))
	}

	var kb strings.Builder
	for _, s := range Decompose(q) {
		var t *StarTable
		if m.Cache != nil {
			kb.Reset()
			kb.WriteString(m.keyPrefix)
			s.AppendKey(&kb, q)
			// Singleflight build: concurrent misses on the same star key
			// share one materialization instead of racing duplicates.
			t = m.Cache.GetOrBuild(kb.String(), func() *StarTable {
				return buildStarTable(m.G, q, s)
			})
		} else {
			t = buildStarTable(m.G, q, s)
		}
		res.Stars = append(res.Stars, StarInstance{
			Star:  s,
			Table: t,
			Cols:  columnMap(q, s, t),
		})
	}

	// Focus pool: candidates supported by every star under the current
	// focus literals.
	pool := res.Candidates[q.Focus]
	v := m.vpool.Get().(*verifier)
	v.q, v.cands, v.stars = q, res.Candidates, res.Stars
	v.prepare()
	supports := v.supports
	for _, inst := range res.Stars {
		supports = append(supports, inst.Table.FocusSupport(m.G, q))
	}
	var verified []graph.NodeID
outer:
	for _, cand := range pool {
		for _, sup := range supports {
			if sup != nil && !sup[cand] {
				continue outer
			}
		}
		if v.verify(cand) {
			verified = append(verified, cand)
		}
	}
	sort.Slice(verified, func(i, j int) bool { return verified[i] < verified[j] })
	res.Answer = verified
	v.supports = supports
	m.release(v)
	return res
}

// release returns a verifier to the pool, dropping every reference that
// would pin a query, result, or support map past the Match that made
// it; the slices and maps themselves stay allocated for reuse.
func (m *Matcher) release(v *verifier) {
	v.q, v.cands, v.stars = nil, nil, nil
	for i := range v.supports {
		v.supports[i] = nil
	}
	v.supports = v.supports[:0]
	m.vpool.Put(v)
}

// columnMap matches the current star's edges to the table's columns by
// structural signature. For freshly built tables this is the identity;
// for cached tables the signatures admit a perfect matching because
// the cache key is signature-derived.
func columnMap(q *query.Query, s *StarQuery, t *StarTable) []int {
	cols := make([]int, len(s.Edges))
	used := make([]bool, len(t.ColSigs))
	for i, e := range s.Edges {
		sig := edgeSig(q, e)
		cols[i] = -1
		for c, csig := range t.ColSigs {
			if !used[c] && csig == sig {
				used[c] = true
				cols[i] = c
				break
			}
		}
	}
	return cols
}

// verifier runs the per-candidate backtracking search. Pattern nodes
// are visited in a BFS order from the focus so each new node is
// anchored by an already-assigned neighbor whenever the pattern is
// connected. Candidate enumeration reads star-table rows — the
// materialized, bound- and literal-filtered partner lists — and only
// falls back to BFS balls for edges no star column covers.
type verifier struct {
	m      *Matcher
	q      *query.Query
	cands  [][]graph.NodeID
	stars  []StarInstance
	order  []query.NodeID
	h      []graph.NodeID // assignment, -1 = unassigned
	used   map[graph.NodeID]bool
	checks []query.NodeCheck // compiled per-pattern-node predicates
	// colFor maps (pattern edge, center pattern node) to a star table
	// column: the materialized partner list for that edge anchored at a
	// center match.
	colFor map[enumKey]enumRef

	// supports holds the per-star focus-support sets for the current
	// Match (scratch owned here so the pool recycles its backing array).
	supports []map[graph.NodeID]bool
	// seen is prepare's BFS visited set, reused across Match calls.
	seen []bool
	// cons holds one edge-constraint buffer per search depth: extend at
	// depth d fills cons[d] while the frames below it still hold theirs.
	cons [][]edgeConstraint
	// dmemo caches Within verdicts per (source, target) node pair for
	// the duration of one Match. The backtracking search re-tests the
	// same pairs across candidates and depths; the memo answers repeats
	// without touching the distance oracle. See memoWithin for the
	// bound encoding.
	dmemo map[int64]int32
}

type enumKey struct {
	edge   int
	center query.NodeID
}

type enumRef struct {
	star int
	col  int
}

func (v *verifier) prepare() {
	q := v.q
	seen := v.seen[:0]
	for range q.Nodes {
		seen = append(seen, false)
	}
	v.seen = seen
	// Isolated non-focus nodes pose no constraint (query.IsolatedIgnored)
	// and are excluded from the valuation entirely.
	for u := range q.Nodes {
		if q.IsolatedIgnored(query.NodeID(u)) {
			seen[u] = true
		}
	}
	v.order = append(v.order[:0], q.Focus)
	seen[q.Focus] = true
	for i := 0; i < len(v.order); i++ {
		for _, nb := range q.Neighbors(v.order[i]) {
			if !seen[nb] {
				seen[nb] = true
				v.order = append(v.order, nb)
			}
		}
		// When the BFS exhausts a component, continue from any unseen
		// node (disconnected patterns arise after RmE).
		if i == len(v.order)-1 {
			for u := range q.Nodes {
				if !seen[u] {
					seen[u] = true
					v.order = append(v.order, query.NodeID(u))
					break
				}
			}
		}
	}
	v.h = v.h[:0]
	for range q.Nodes {
		v.h = append(v.h, -1)
	}
	if v.used == nil {
		v.used = map[graph.NodeID]bool{}
	} else {
		clear(v.used)
	}
	v.checks = v.checks[:0]
	for u := range q.Nodes {
		v.checks = append(v.checks, q.Check(v.m.G, query.NodeID(u)))
	}
	if v.dmemo == nil {
		v.dmemo = map[int64]int32{}
	} else {
		clear(v.dmemo)
	}

	if v.colFor == nil {
		v.colFor = map[enumKey]enumRef{}
	} else {
		clear(v.colFor)
	}
	for si, inst := range v.stars {
		for k, se := range inst.Star.Edges {
			if inst.Cols[k] < 0 {
				continue
			}
			v.colFor[enumKey{edge: se.EdgeIdx, center: inst.Star.Center}] =
				enumRef{star: si, col: inst.Cols[k]}
		}
	}
}

// verify reports whether an injective valuation with h(focus) = cand
// exists.
func (v *verifier) verify(cand graph.NodeID) bool {
	for i := range v.h {
		v.h[i] = -1
	}
	clear(v.used)
	v.h[v.q.Focus] = cand
	v.used[cand] = true
	ok := v.extend(1)
	delete(v.used, cand)
	return ok
}

// edgeConstraint is one distance requirement between the node being
// assigned and an already-assigned anchor.
type edgeConstraint struct {
	edge      int          // pattern edge index
	anchorPat query.NodeID // assigned endpoint's pattern node
	anchor    graph.NodeID // its image
	bound     int
	out       bool // anchor → u in the pattern
}

// tryAssign extends the valuation with h(u) = w and recurses; the
// assignment is rolled back on failure.
func (v *verifier) tryAssign(u query.NodeID, w graph.NodeID, depth int) bool {
	if v.used[w] {
		return false
	}
	v.h[u] = w
	v.used[w] = true
	ok := v.extend(depth + 1)
	v.h[u] = -1
	delete(v.used, w)
	return ok
}

// memoWithin is Dist.Within with a per-Match memo on the node pair.
// The verdict is monotone in the bound — within at b implies within at
// every b' ≥ b, and not-within at b implies not-within at every
// b' ≤ b — so the memo stores two half-open certificates per pair,
// packed into one int32: the high 16 bits hold minTrue+1 (the smallest
// bound proven within; 0 = none yet) and the low 16 bits hold
// maxFalse+1 (the largest bound proven exceeded; 0 = none yet). Only
// queries falling in the unknown gap between the certificates reach
// the oracle, and only Within is ever called — never exact Dist, which
// on the BFS oracle would trade a bounded search for an unbounded one.
func (v *verifier) memoWithin(s, t graph.NodeID, bound int) bool {
	if bound < 0 || bound >= 1<<16-1 {
		return v.m.Dist.Within(s, t, bound)
	}
	key := int64(s)<<32 | int64(uint32(t))
	rec := v.dmemo[key]
	minTrue := int(rec>>16) - 1
	maxFalse := int(rec&0xffff) - 1
	if minTrue >= 0 && bound >= minTrue {
		return true
	}
	if maxFalse >= 0 && bound <= maxFalse {
		return false
	}
	within := v.m.Dist.Within(s, t, bound)
	if within {
		minTrue = bound
	} else {
		maxFalse = bound
	}
	v.dmemo[key] = int32(minTrue+1)<<16 | int32(maxFalse+1)
	return within
}

// checkRest verifies the remaining distance constraints on w (all but
// cons[skip], which the enumeration source already guarantees).
func (v *verifier) checkRest(cons []edgeConstraint, w graph.NodeID, skip int) bool {
	for i, c := range cons {
		if i == skip {
			continue
		}
		var within bool
		if c.out {
			within = v.memoWithin(c.anchor, w, c.bound)
		} else {
			within = v.memoWithin(w, c.anchor, c.bound)
		}
		if !within {
			return false
		}
	}
	return true
}

func (v *verifier) extend(depth int) bool {
	if depth == len(v.order) {
		return true
	}
	u := v.order[depth]

	// Per-depth constraint buffer: frames below this one still hold
	// theirs, so the scratch is indexed by depth and kept on the
	// verifier for reuse across candidates and Match calls.
	for len(v.cons) <= depth {
		v.cons = append(v.cons, nil)
	}
	cons := v.cons[depth][:0]
	for ei, e := range v.q.Edges {
		switch {
		case e.From == u && v.h[e.To] >= 0:
			cons = append(cons, edgeConstraint{
				edge: ei, anchorPat: e.To, anchor: v.h[e.To], bound: e.Bound, out: false})
		case e.To == u && v.h[e.From] >= 0:
			cons = append(cons, edgeConstraint{
				edge: ei, anchorPat: e.From, anchor: v.h[e.From], bound: e.Bound, out: true})
		}
	}
	v.cons[depth] = cons

	if len(cons) == 0 {
		for _, w := range v.cands[u] {
			if v.tryAssign(u, w, depth) {
				return true
			}
		}
		return false
	}

	// Enumeration source: prefer the smallest star-table partner list
	// among the constraints; its entries are already distance- and
	// candidate-filtered (focus entries are label-only and re-checked).
	bestList := -1
	var list []NbrEntry
	for i, c := range cons {
		ref, ok := v.colFor[enumKey{edge: c.edge, center: c.anchorPat}]
		if !ok {
			continue
		}
		row := v.stars[ref.star].Table.Row(c.anchor)
		if row == nil {
			// The anchor is not a match of its star's center: no
			// valuation extends this assignment.
			return false
		}
		if l := row.Nbrs[ref.col]; bestList < 0 || len(l) < len(list) {
			bestList, list = i, l
		}
	}

	if bestList >= 0 {
		needLitCheck := u == v.q.Focus // focus columns are label-only
		for _, en := range list {
			w := en.V
			if needLitCheck && !v.checks[u].Candidate(v.m.G, w) {
				continue
			}
			if v.checkRest(cons, w, bestList) && v.tryAssign(u, w, depth) {
				return true
			}
		}
		return false
	}

	// Fallback: expand the smallest-bound constraint's ball.
	best := 0
	for i := 1; i < len(cons); i++ {
		if cons[i].bound < cons[best].bound {
			best = i
		}
	}
	bc := cons[best]
	dir := graph.Forward
	if !bc.out {
		dir = graph.Backward
	}
	for _, nd := range v.m.G.Ball(bc.anchor, bc.bound, dir) {
		if nd.D == 0 {
			continue
		}
		w := nd.V
		if !v.checks[u].Candidate(v.m.G, w) {
			continue
		}
		if v.checkRest(cons, w, best) && v.tryAssign(u, w, depth) {
			return true
		}
	}
	return false
}
