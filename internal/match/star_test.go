package match

import (
	"testing"

	"wqe/internal/distindex"
	"wqe/internal/graph"
	"wqe/internal/query"
)

// chainQuery builds focus → a → b with the given bounds.
func chainQuery(b1, b2 int) *query.Query {
	q := query.New()
	f := q.AddNode("F")
	a := q.AddNode("A")
	b := q.AddNode("B")
	q.AddEdge(f, a, b1)
	q.AddEdge(a, b, b2)
	q.Focus = f
	return q
}

// TestAugmentedDistance: a star centered two pattern hops from the
// focus carries an augmented edge labeled with the pattern distance.
func TestAugmentedDistance(t *testing.T) {
	q := chainQuery(2, 1)
	var bStar *StarQuery
	for _, s := range Decompose(q) {
		if s.Center == 2 { // node "B"
			bStar = s
		}
	}
	if bStar == nil {
		// B may be covered as a leaf of A's star; force a singleton view.
		bStar = makeStar(q, 2)
	}
	if bStar.HasFocus {
		t.Fatal("B's star should not contain the focus directly")
	}
	if bStar.AugDist != 3 {
		t.Errorf("augmented distance = %d, want 3 (2+1 bounds)", bStar.AugDist)
	}
}

// TestAugmentedStarConstrains: the augmented star table prunes focus
// candidates with no B-node within the augmented distance.
func TestAugmentedStarConstrains(t *testing.T) {
	g := graph.New()
	f1 := g.AddNode("F", nil)
	a1 := g.AddNode("A", nil)
	b1 := g.AddNode("B", nil)
	g.AddEdge(f1, a1, "")
	g.AddEdge(a1, b1, "")
	// A second F with an A but no B in range.
	f2 := g.AddNode("F", nil)
	a2 := g.AddNode("A", nil)
	g.AddEdge(f2, a2, "")

	q := chainQuery(1, 1)
	m := NewMatcher(g, distindex.NewBFS(g), nil)
	got := m.Match(q).Answer
	if len(got) != 1 || got[0] != f1 {
		t.Errorf("answer = %v, want {%d}", got, f1)
	}

	// The star centered at B (if present) supports only f1.
	res := m.Match(q)
	for _, inst := range res.Stars {
		sup := inst.Table.FocusSupport(g, q)
		if sup == nil {
			continue
		}
		if sup[f2] && inst.Star.Center == 2 {
			t.Error("augmented star should not support the B-less focus")
		}
	}
}

// TestDisconnectedStarSupportsAll: a star in a component detached from
// the focus constrains its own nodes but supports every focus
// candidate.
func TestDisconnectedStarSupportsAll(t *testing.T) {
	q := query.New()
	f := q.AddNode("F")
	a := q.AddNode("A")
	b := q.AddNode("B")
	q.AddEdge(a, b, 1) // component without the focus
	q.Focus = f

	g := graph.New()
	g.AddNode("F", nil)
	x := g.AddNode("A", nil)
	y := g.AddNode("B", nil)
	g.AddEdge(x, y, "")

	m := NewMatcher(g, distindex.NewBFS(g), nil)
	res := m.Match(q)
	if len(res.Answer) != 1 {
		t.Errorf("answer = %v, want the single F", res.Answer)
	}
	for _, inst := range res.Stars {
		if !inst.Star.HasFocus && inst.Star.AugDist == 0 {
			if sup := inst.Table.FocusSupport(g, q); sup != nil {
				t.Error("detached star must support all focus candidates")
			}
		}
	}
}

// TestColumnMapOnCachedTable: a cached table built from a query with
// reversed edge declaration order still maps columns correctly.
func TestColumnMapOnCachedTable(t *testing.T) {
	g := graph.New()
	c := g.AddNode("C", nil)
	a := g.AddNode("A", nil)
	b := g.AddNode("B", nil)
	g.AddEdge(c, a, "")
	g.AddEdge(b, c, "")

	build := func(order bool) *query.Query {
		q := query.New()
		cc := q.AddNode("C")
		aa := q.AddNode("A")
		bb := q.AddNode("B")
		if order {
			q.AddEdge(cc, aa, 1)
			q.AddEdge(bb, cc, 1)
		} else {
			q.AddEdge(bb, cc, 1)
			q.AddEdge(cc, aa, 1)
		}
		q.Focus = cc
		return q
	}
	cache := NewCache(16, 0.95)
	m := NewMatcher(g, distindex.NewBFS(g), cache)
	if got := m.Match(build(true)).Answer; len(got) != 1 || got[0] != c {
		t.Fatalf("first order: %v", got)
	}
	// Same structural star, reversed edge order: must hit the cache and
	// still answer correctly through the column map.
	if got := m.Match(build(false)).Answer; len(got) != 1 || got[0] != c {
		t.Fatalf("reversed order: %v", got)
	}
	if hits, _ := cache.Stats(); hits == 0 {
		t.Error("reversed-order query should hit the cache")
	}
	_ = a
	_ = b
}
