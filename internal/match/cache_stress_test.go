package match

import (
	"fmt"
	"sync"
	"testing"
)

// TestCacheConcurrentStress hammers one star-view cache from many
// goroutines with interleaved Get/Put/Len/Stats. Run under -race it
// proves the "guarded by mu" annotations in cache.go hold dynamically,
// not just under wqe-lint's lexical lockcheck.
func TestCacheConcurrentStress(t *testing.T) {
	const (
		capacity = 32
		workers  = 8
		rounds   = 2000
		keys     = 64
	)
	c := NewCache(capacity, 0.9)
	tables := make([]*StarTable, keys)
	for i := range tables {
		tables[i] = &StarTable{}
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				k := (seed*31 + i) % keys
				key := fmt.Sprintf("star-%d", k)
				if got := c.Get(key); got == nil {
					c.Put(key, tables[k])
				}
				if i%64 == 0 {
					c.Len()
					c.Stats()
				}
			}
		}(w)
	}
	wg.Wait()
	if n := c.Len(); n < 1 || n > capacity {
		t.Fatalf("cache holds %d entries, want within [1, %d]", n, capacity)
	}
	hits, misses := c.Stats()
	if hits+misses == 0 {
		t.Fatal("stress run recorded no cache traffic")
	}
	if c.Get("star-definitely-absent") != nil {
		t.Fatal("Get of an absent key returned a table")
	}
}
