// Package match implements pattern-query evaluation (P-homomorphism
// with edge-to-path matching, §2.1) and the star-view machinery of
// §2.3/§5.2: queries decompose into star queries whose materialized
// star tables are cached and reused across the highly similar query
// rewrites a Q-Chase produces.
package match

import (
	"sort"
	"strconv"
	"strings"

	"wqe/internal/graph"
	"wqe/internal/query"
)

// StarEdge is one pattern edge of a star, seen from the center.
type StarEdge struct {
	EdgeIdx int          // index into the owning query's Edges
	Other   query.NodeID // the non-center endpoint
	Out     bool         // true when the edge is center → Other
	Bound   int
}

// StarQuery is one star of a star view Q.S: a center, the pattern edges
// incident to it, and — when the focus is not the center or one of its
// neighbors — an augmented edge to the focus labeled with their
// distance in Q.
type StarQuery struct {
	Center   query.NodeID
	Edges    []StarEdge
	HasFocus bool // center or a neighbor is the focus
	AugDist  int  // augmented-edge label; 0 when HasFocus
}

// Decompose computes a star view of q: a set of stars, greedily chosen
// by uncovered-edge count, covering every node and edge (§2.3). The
// focus participates in every star either directly or via an augmented
// edge.
func Decompose(q *query.Query) []*StarQuery {
	covered := make([]bool, len(q.Edges))
	nodeCovered := make([]bool, len(q.Nodes))
	var stars []*StarQuery

	uncoveredAt := func(u query.NodeID) int {
		n := 0
		for i, e := range q.Edges {
			if !covered[i] && (e.From == u || e.To == u) {
				n++
			}
		}
		return n
	}

	for {
		best, bestN := query.NodeID(-1), 0
		for u := range q.Nodes {
			if n := uncoveredAt(query.NodeID(u)); n > bestN {
				best, bestN = query.NodeID(u), n
			}
		}
		if bestN == 0 {
			break
		}
		stars = append(stars, makeStar(q, best))
		nodeCovered[best] = true
		for i, e := range q.Edges {
			if e.From == best || e.To == best {
				covered[i] = true
				nodeCovered[e.From] = true
				nodeCovered[e.To] = true
			}
		}
	}
	// The single-node query gets a singleton star for its focus.
	// Isolated non-focus nodes pose no constraint (they arise from RmE
	// detaching an endpoint; see query.IsolatedIgnored) and get none.
	for u := range q.Nodes {
		if !nodeCovered[u] && len(q.IncidentEdges(query.NodeID(u))) == 0 &&
			query.NodeID(u) == q.Focus {
			stars = append(stars, makeStar(q, query.NodeID(u)))
		}
	}
	return stars
}

func makeStar(q *query.Query, center query.NodeID) *StarQuery {
	s := &StarQuery{Center: center}
	hasFocus := center == q.Focus
	for i, e := range q.Edges {
		switch center {
		case e.From:
			s.Edges = append(s.Edges, StarEdge{EdgeIdx: i, Other: e.To, Out: true, Bound: e.Bound})
			if e.To == q.Focus {
				hasFocus = true
			}
		case e.To:
			s.Edges = append(s.Edges, StarEdge{EdgeIdx: i, Other: e.From, Out: false, Bound: e.Bound})
			if e.From == q.Focus {
				hasFocus = true
			}
		}
	}
	s.HasFocus = hasFocus
	if !hasFocus {
		d := q.PatternDist(center, q.Focus)
		if d == graph.Unreachable {
			// Disconnected from the focus (possible after RmE): treat as
			// focus-agnostic; the star then constrains its own nodes only.
			d = 0
		}
		s.AugDist = d
	}
	return s
}

// Key returns a structural cache key for the star within query q: it
// encodes the center's label and literals, each star edge's direction,
// bound, and endpoint signature, and the augmented distance — but no
// pattern-node ids, so structurally identical stars of different
// rewrites share cache entries. Focus positions are keyed by label
// only: materialized tables store label-filtered focus columns and
// apply focus literals at read time, so rewrites differing only in
// focus predicates share one table.
func (s *StarQuery) Key(q *query.Query) string {
	var b strings.Builder
	s.AppendKey(&b, q)
	return b.String()
}

// AppendKey writes the structural cache key (see Key) into b. Match
// builds one key per star per evaluation on the Q-Chase hot path;
// appending into a caller-owned builder lets it prepend the graph
// prefix without a second allocation pass.
func (s *StarQuery) AppendKey(b *strings.Builder, q *query.Query) {
	writeSig := func(u query.NodeID) {
		if u == q.Focus {
			b.WriteString(q.Nodes[u].Label)
			b.WriteString("{*}")
			return
		}
		writeNodeSig(b, q, u)
	}
	b.WriteString("c:")
	writeSig(s.Center)
	// Edge signatures must be order-insensitive (a cached table may come
	// from a rewrite whose edges were ordered differently), so they are
	// sorted before concatenation and need individual strings.
	edges := make([]string, 0, len(s.Edges))
	for _, e := range s.Edges {
		edges = append(edges, edgeSig(q, e))
	}
	sort.Strings(edges)
	for _, e := range edges {
		b.WriteByte('|')
		b.WriteString(e)
	}
	if s.Center == q.Focus {
		b.WriteString("|C*")
	}
	if !s.HasFocus {
		b.WriteString("|aug:")
		b.WriteString(strconv.Itoa(s.AugDist))
		b.WriteByte(':')
		writeSig(q.Focus)
	}
}

// edgeSig encodes one star edge's structural signature: direction,
// bound, and the non-center endpoint's matching signature (label-only
// for the focus, which star tables store literal-agnostic).
func edgeSig(q *query.Query, e StarEdge) string {
	var b strings.Builder
	if e.Out {
		b.WriteByte('>')
	} else {
		b.WriteByte('<')
	}
	b.WriteString(strconv.Itoa(e.Bound))
	if e.Other == q.Focus {
		b.WriteString(q.Nodes[e.Other].Label)
		b.WriteString("{*}")
	} else {
		writeNodeSig(&b, q, e.Other)
	}
	return b.String()
}

// nodeSig encodes a pattern node's matching semantics: label plus
// sorted literals.
func nodeSig(q *query.Query, u query.NodeID) string {
	var b strings.Builder
	writeNodeSig(&b, q, u)
	return b.String()
}

// writeNodeSig appends a pattern node's matching signature into b.
func writeNodeSig(b *strings.Builder, q *query.Query, u query.NodeID) {
	n := q.Nodes[u]
	b.WriteString(n.Label)
	b.WriteByte('{')
	switch len(n.Literals) {
	case 0:
	case 1: // common case: skip the sort scaffolding
		b.WriteString(n.Literals[0].String())
	default:
		lits := make([]string, 0, len(n.Literals))
		for _, l := range n.Literals {
			lits = append(lits, l.String())
		}
		sort.Strings(lits)
		for i, l := range lits {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(l)
		}
	}
	b.WriteByte('}')
}
