package match

import (
	"fmt"
	"testing"
)

// benchCache builds a warm cache with the given shard count: every key
// of the working set is present, so the benchmark exercises the pure
// hit path of GetOrBuild — the path every beam level hammers once the
// star views stabilize.
func benchCache(shards, keys int) (*Cache, []string) {
	c := NewCacheSharded(4*keys, 0.95, shards)
	ks := make([]string, keys)
	for i := range ks {
		ks[i] = fmt.Sprintf("g1|star|c=phone|e%d>store@2", i)
		c.Put(ks[i], &StarTable{})
	}
	return c, ks
}

// benchGetOrBuildHit measures contended GetOrBuild hits: every
// goroutine of RunParallel walks the warm working set. On a 1-shard
// cache all of them serialize on one mutex; sharding spreads them over
// the stripes. ReportAllocs pins the hit path at zero allocations.
func benchGetOrBuildHit(b *testing.B, shards int) {
	c, ks := benchCache(shards, 64)
	// The working set is warm and the capacity generous, so build must
	// never run; b.Fail (goroutine-safe) flags it if it somehow does.
	build := func() *StarTable { b.Fail(); return &StarTable{} }
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if c.GetOrBuild(ks[i&63], build) == nil {
				b.Fail()
			}
			i++
		}
	})
}

func BenchmarkCacheGetOrBuildHit1Shard(b *testing.B)  { benchGetOrBuildHit(b, 1) }
func BenchmarkCacheGetOrBuildHitSharded(b *testing.B) { benchGetOrBuildHit(b, 0) }
