package match

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestBumpSurvivesHugeTickGap is the regression test for the O(age)
// decay spin: bumping an entry whose last touch lies a trillion ticks
// in the past must complete instantly (the old per-tick loop under the
// shard lock would run for minutes). The decayed mass must be flushed
// to exactly one fresh hit.
func TestBumpSurvivesHugeTickGap(t *testing.T) {
	c := NewCache(8, 0.95)
	c.Put("k", &StarTable{})

	sh := c.shardFor("k")
	sh.mu.Lock()
	sh.tick += 1_000_000_000_000 // simulate a very long miss streak
	sh.mu.Unlock()

	start := time.Now()
	if c.Get("k") == nil {
		t.Fatal("entry vanished")
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("bump across a huge tick gap took %v; decay must be closed-form", d)
	}
	sh.mu.Lock()
	hits := sh.entries["k"].hits
	sh.mu.Unlock()
	if hits != 1 {
		t.Fatalf("hits after full decay = %v, want exactly 1", hits)
	}
}

// TestBumpClosedFormMatchesLoop checks the closed form agrees with the
// definitional per-tick decay on moderate ages.
func TestBumpClosedFormMatchesLoop(t *testing.T) {
	const decay = 0.9
	c := NewCache(8, decay)
	c.Put("k", &StarTable{})
	sh := c.shardFor("k")
	sh.mu.Lock()
	e := sh.entries["k"]
	e.hits = 5
	age := int64(37)
	sh.tick = e.lastTick + age
	sh.bumpLocked(e)
	got := e.hits
	sh.mu.Unlock()

	want := 5.0
	for i := int64(0); i < age; i++ {
		want *= decay
	}
	want++
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("closed-form bump = %v, per-tick loop gives %v", got, want)
	}
}

// TestEvictionDeterministicOnTies fills a single-shard cache with
// equal-hit entries and checks the eviction victim is always the
// smallest key, run after run — map iteration order must not leak into
// cache contents. (Single shard pins every key onto one eviction scan;
// the sharded variants live in cache_shard_test.go.)
func TestEvictionDeterministicOnTies(t *testing.T) {
	for run := 0; run < 20; run++ {
		c := NewCacheSharded(4, 0.95, 1)
		for _, k := range []string{"d", "b", "c", "a"} {
			c.Put(k, &StarTable{})
		}
		// All four entries decay identically; inserting a fifth must
		// evict "a", the smallest key among the least-hit.
		c.Put("e", &StarTable{})
		if c.Get("a") != nil {
			t.Fatalf("run %d: tie eviction kept \"a\"", run)
		}
		for _, k := range []string{"b", "c", "d", "e"} {
			if c.Get(k) == nil {
				t.Fatalf("run %d: tie eviction dropped %q instead of \"a\"", run, k)
			}
		}
	}
}

// TestGetOrBuildSingleflight hammers one key from many goroutines and
// checks the table is built exactly once, everyone gets that table, and
// every initial caller is accounted a miss.
func TestGetOrBuildSingleflight(t *testing.T) {
	const workers = 16
	c := NewCache(8, 0.95)
	want := &StarTable{}
	var builds atomic.Int32
	var ready, done sync.WaitGroup
	ready.Add(workers)
	done.Add(workers)
	results := make([]*StarTable, workers)
	for i := 0; i < workers; i++ {
		go func(i int) {
			defer done.Done()
			ready.Done()
			ready.Wait() // maximize contention on the cold key
			results[i] = c.GetOrBuild("hot", func() *StarTable {
				builds.Add(1)
				time.Sleep(20 * time.Millisecond) // hold the flight open
				return want
			})
		}(i)
	}
	done.Wait()
	if n := builds.Load(); n != 1 {
		t.Fatalf("buildStarTable ran %d times for one key, want 1", n)
	}
	for i, got := range results {
		if got != want {
			t.Fatalf("caller %d got table %p, want the in-flight build %p", i, got, want)
		}
	}
	if c.Get("hot") != want {
		t.Fatal("table was not committed to the cache after the flight")
	}
}

// TestGetOrBuildHitSkipsBuild checks a warm key never invokes build.
func TestGetOrBuildHitSkipsBuild(t *testing.T) {
	c := NewCache(8, 0.95)
	want := &StarTable{}
	c.Put("k", want)
	got := c.GetOrBuild("k", func() *StarTable {
		t.Fatal("build ran on a cache hit")
		return nil
	})
	if got != want {
		t.Fatalf("GetOrBuild returned %p, want cached %p", got, want)
	}
	hits, _ := c.Stats()
	if hits != 1 {
		t.Fatalf("hits = %d, want 1", hits)
	}
}

// TestGetOrBuildPanicDoesNotLeakFlight is the regression test for the
// singleflight panic leak: before the fix, a panicking build left
// f.done open and the inflight entry in place, so every concurrent and
// future caller of the same key blocked forever. Now the panic must
// propagate to the panicking builder's caller, a waiter blocked on the
// doomed flight must wake and complete with its own build, and a fresh
// caller must find no stale in-flight state.
func TestGetOrBuildPanicDoesNotLeakFlight(t *testing.T) {
	c := NewCache(8, 0.95)
	want := &StarTable{}
	inBuild := make(chan struct{})
	release := make(chan struct{})

	// A waiter that arrives while the doomed build is in flight. It
	// must not inherit the panic — it retries and builds successfully.
	waiterDone := make(chan *StarTable, 1)
	go func() {
		<-inBuild
		waiterDone <- c.GetOrBuild("boom", func() *StarTable { return want })
	}()

	panicked := make(chan interface{}, 1)
	go func() {
		defer func() { panicked <- recover() }()
		c.GetOrBuild("boom", func() *StarTable {
			close(inBuild)
			<-release // hold the flight open until the waiter is queued
			panic("star build exploded")
		})
	}()

	<-inBuild
	// Give the waiter a moment to block on the in-flight build before
	// the builder panics; correctness does not depend on winning this
	// race (a late waiter just becomes the fresh builder).
	time.Sleep(10 * time.Millisecond)
	close(release)

	if r := <-panicked; r == nil {
		t.Fatal("the panicking builder's caller must see the panic")
	} else if r != "star build exploded" {
		t.Fatalf("panic value = %v, want the original", r)
	}

	select {
	case got := <-waiterDone:
		if got != want {
			t.Fatalf("waiter completed with %p, want its own rebuild %p", got, want)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter still blocked after the build panicked: flight leaked")
	}

	// A fresh caller must complete too, and the key must be buildable.
	done := make(chan *StarTable, 1)
	go func() {
		done <- c.GetOrBuild("boom", func() *StarTable { return want })
	}()
	select {
	case got := <-done:
		if got != want {
			t.Fatalf("fresh caller got %p, want %p", got, want)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("fresh caller blocked: stale inflight entry survived the panic")
	}

	sh := c.shardFor("boom")
	sh.mu.Lock()
	stale := len(sh.inflight)
	sh.mu.Unlock()
	if stale != 0 {
		t.Fatalf("%d in-flight entries left behind, want 0", stale)
	}
}
