package match

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestBumpSurvivesHugeTickGap is the regression test for the O(age)
// decay spin: bumping an entry whose last touch lies a trillion ticks
// in the past must complete instantly (the old per-tick loop under the
// cache lock would run for minutes). The decayed mass must be flushed
// to exactly one fresh hit.
func TestBumpSurvivesHugeTickGap(t *testing.T) {
	c := NewCache(8, 0.95)
	c.Put("k", &StarTable{})

	c.mu.Lock()
	c.tick += 1_000_000_000_000 // simulate a very long miss streak
	c.mu.Unlock()

	start := time.Now()
	if c.Get("k") == nil {
		t.Fatal("entry vanished")
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("bump across a huge tick gap took %v; decay must be closed-form", d)
	}
	c.mu.Lock()
	hits := c.entries["k"].hits
	c.mu.Unlock()
	if hits != 1 {
		t.Fatalf("hits after full decay = %v, want exactly 1", hits)
	}
}

// TestBumpClosedFormMatchesLoop checks the closed form agrees with the
// definitional per-tick decay on moderate ages.
func TestBumpClosedFormMatchesLoop(t *testing.T) {
	const decay = 0.9
	c := NewCache(8, decay)
	c.Put("k", &StarTable{})
	c.mu.Lock()
	e := c.entries["k"]
	e.hits = 5
	age := int64(37)
	c.tick = e.lastTick + age
	c.bumpLocked(e)
	got := e.hits
	c.mu.Unlock()

	want := 5.0
	for i := int64(0); i < age; i++ {
		want *= decay
	}
	want++
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("closed-form bump = %v, per-tick loop gives %v", got, want)
	}
}

// TestEvictionDeterministicOnTies fills a cache with equal-hit entries
// and checks the eviction victim is always the smallest key, run after
// run — map iteration order must not leak into cache contents.
func TestEvictionDeterministicOnTies(t *testing.T) {
	for run := 0; run < 20; run++ {
		c := NewCache(4, 0.95)
		for _, k := range []string{"d", "b", "c", "a"} {
			c.Put(k, &StarTable{})
		}
		// All four entries decay identically; inserting a fifth must
		// evict "a", the smallest key among the least-hit.
		c.Put("e", &StarTable{})
		if c.Get("a") != nil {
			t.Fatalf("run %d: tie eviction kept \"a\"", run)
		}
		for _, k := range []string{"b", "c", "d", "e"} {
			if c.Get(k) == nil {
				t.Fatalf("run %d: tie eviction dropped %q instead of \"a\"", run, k)
			}
		}
	}
}

// TestGetOrBuildSingleflight hammers one key from many goroutines and
// checks the table is built exactly once, everyone gets that table, and
// every initial caller is accounted a miss.
func TestGetOrBuildSingleflight(t *testing.T) {
	const workers = 16
	c := NewCache(8, 0.95)
	want := &StarTable{}
	var builds atomic.Int32
	var ready, done sync.WaitGroup
	ready.Add(workers)
	done.Add(workers)
	results := make([]*StarTable, workers)
	for i := 0; i < workers; i++ {
		go func(i int) {
			defer done.Done()
			ready.Done()
			ready.Wait() // maximize contention on the cold key
			results[i] = c.GetOrBuild("hot", func() *StarTable {
				builds.Add(1)
				time.Sleep(20 * time.Millisecond) // hold the flight open
				return want
			})
		}(i)
	}
	done.Wait()
	if n := builds.Load(); n != 1 {
		t.Fatalf("buildStarTable ran %d times for one key, want 1", n)
	}
	for i, got := range results {
		if got != want {
			t.Fatalf("caller %d got table %p, want the in-flight build %p", i, got, want)
		}
	}
	if c.Get("hot") != want {
		t.Fatal("table was not committed to the cache after the flight")
	}
}

// TestGetOrBuildHitSkipsBuild checks a warm key never invokes build.
func TestGetOrBuildHitSkipsBuild(t *testing.T) {
	c := NewCache(8, 0.95)
	want := &StarTable{}
	c.Put("k", want)
	got := c.GetOrBuild("k", func() *StarTable {
		t.Fatal("build ran on a cache hit")
		return nil
	})
	if got != want {
		t.Fatalf("GetOrBuild returned %p, want cached %p", got, want)
	}
	hits, _ := c.Stats()
	if hits != 1 {
		t.Fatalf("hits = %d, want 1", hits)
	}
}
