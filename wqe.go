// Package wqe answers Why-questions by exemplars over attributed
// graphs — a from-scratch Go implementation of "Answering Why-questions
// by Exemplars in Attributed Graphs" (Namaki, Song, Wu, Yang,
// SIGMOD 2019).
//
// Given a graph pattern query Q with a focus node, its answers Q(G),
// and an exemplar E = (T, C) describing desired answers, the library
// computes a budgeted query rewrite Q' whose answers are as close as
// possible to the entities the exemplar characterizes, together with
// differential-table lineage explaining every change.
//
// The package is a façade: it re-exports the stable surface of the
// internal packages.
//
//	g := wqe.NewGraph()
//	phone := g.AddNode("Cellphone", map[string]wqe.Value{
//	    "Price": wqe.N(840),
//	})
//	q := wqe.NewQuery()
//	u := q.AddNode("Cellphone", wqe.Literal{Attr: "Price", Op: wqe.GE, Val: wqe.N(840)})
//	q.Focus = u
//	e := &wqe.Exemplar{Tuples: []wqe.TuplePattern{{"Price": wqe.ConstCell(wqe.N(790))}}}
//	w, err := wqe.NewWhy(g, q, e, wqe.DefaultConfig())
//	if err != nil { ... }
//	answer := w.AnsW()
//	fmt.Println(answer.Ops, answer.Matches)
//
// Entry points:
//
//   - Why.AnsW — anytime exact rewrite search (Fig 5);
//   - Why.TopK — top-k query suggestion (§6.2);
//   - Why.AnsHeu / Why.AnsHeuB — beam-search heuristics (§5.5);
//   - Why.ApxWhyM — Why-Many refinement (Theorem 6.1);
//   - Why.AnsWE — Why-Empty removal-only rewriting (Lemma 6.2);
//   - Why.FMAnsW — frequent-pattern-mining baseline.
package wqe

import (
	"wqe/internal/chase"
	"wqe/internal/distindex"
	"wqe/internal/exemplar"
	"wqe/internal/graph"
	"wqe/internal/match"
	"wqe/internal/ops"
	"wqe/internal/query"
)

// Graph model.
type (
	// Graph is a directed, attributed graph G = (V, E, L, f_A).
	Graph = graph.Graph
	// NodeID identifies a graph node.
	NodeID = graph.NodeID
	// Value is a typed attribute value (number or string).
	Value = graph.Value
	// Domain is an attribute's active domain adom(A, G).
	Domain = graph.Domain
)

// NewGraph returns an empty attributed graph.
func NewGraph() *Graph { return graph.New() }

// N returns a numeric attribute value.
func N(v float64) Value { return graph.N(v) }

// S returns a string attribute value.
func S(v string) Value { return graph.S(v) }

// ParseValue parses "$800", "25%", "6.2" as numbers and anything else
// as a string.
func ParseValue(s string) Value { return graph.ParseValue(s) }

// Comparison operators for literals and constraints.
const (
	EQ = graph.EQ
	LT = graph.LT
	LE = graph.LE
	GT = graph.GT
	GE = graph.GE
)

// Query model.
type (
	// Query is a graph pattern query with a designated focus node.
	Query = query.Query
	// QueryNodeID indexes a pattern node.
	QueryNodeID = query.NodeID
	// Literal is a search predicate u.A op c on a pattern node.
	Literal = query.Literal
)

// NewQuery returns an empty pattern query.
func NewQuery() *Query { return query.New() }

// Exemplar model.
type (
	// Exemplar is E = (T, C): tuple patterns plus constraints.
	Exemplar = exemplar.Exemplar
	// TuplePattern is one row of T.
	TuplePattern = exemplar.TuplePattern
	// Cell is one tuple-pattern entry (constant, variable, wildcard).
	Cell = exemplar.Cell
	// Constraint is one literal of C.
	Constraint = exemplar.Constraint
)

// ConstCell returns a constant tuple-pattern cell.
func ConstCell(v Value) Cell { return exemplar.C(v) }

// VarCell returns a named-variable cell.
func VarCell(name string) Cell { return exemplar.V(name) }

// WildcardCell returns the '_' cell.
func WildcardCell() Cell { return exemplar.W() }

// ExemplarFromEntities builds the entity-list form of an exemplar: one
// tuple pattern per entity over the listed attributes (all attributes
// when attrs is empty).
func ExemplarFromEntities(g *Graph, entities []NodeID, attrs []string) *Exemplar {
	return exemplar.FromEntities(g, entities, attrs)
}

// Rewriting and chase.
type (
	// Config tunes the Q-Chase algorithms (budget B, bound b_m, caches,
	// pruning, anytime limits).
	Config = chase.Config
	// Why is a compiled Why-question; its methods run the algorithms.
	Why = chase.Why
	// Answer is a query-rewrite answer with lineage.
	Answer = chase.Answer
	// DiffEntry is one differential-table row (operator → answer delta).
	DiffEntry = chase.DiffEntry
	// Op is an atomic rewrite operator (Table 1).
	Op = ops.Op
	// OpSequence is an operator sequence with cost and normal form.
	OpSequence = ops.Sequence
	// Relevance classifies candidates as RM/IM/RC/IC.
	Relevance = chase.Relevance
	// Stats reports one algorithm run's search effort.
	Stats = chase.Stats
)

// DefaultConfig mirrors the paper's experimental defaults (B = 3,
// b_m = 3, θ = 1, λ = 1, caching and pruning on).
func DefaultConfig() Config { return chase.DefaultConfig() }

// NewWhy compiles a Why-question W(Q(u_o), E) over g.
func NewWhy(g *Graph, q *Query, e *Exemplar, cfg Config) (*Why, error) {
	return chase.NewWhy(g, q, e, cfg)
}

// Session supports the exploratory query → response → exemplar →
// rewrite loop (Fig 3), keeping the distance oracle and star-view cache
// warm across consecutive Why-questions on one graph.
type Session = chase.Session

// NewSession builds an exploration session over g.
func NewSession(g *Graph, cfg Config) *Session { return chase.NewSession(g, cfg) }

// MultiFocusAnswer pairs a focus node with its rewrite.
type MultiFocusAnswer = chase.MultiFocusAnswer

// AnsWMultiFocus answers a Why-question with several focus nodes
// (the appendix extension): one chase per focus against its exemplar.
func AnsWMultiFocus(g *Graph, q *Query, foci []QueryNodeID, exemplars []*Exemplar, cfg Config) ([]MultiFocusAnswer, error) {
	return chase.AnsWMultiFocus(g, q, foci, exemplars, cfg)
}

// Evaluation plumbing for advanced use (custom matching, distance
// oracles, star-view caches).
type (
	// Matcher evaluates pattern queries with star views.
	Matcher = match.Matcher
	// MatchResult is one evaluation: answer, candidates, star tables.
	MatchResult = match.Result
	// DistIndex answers exact shortest-path distance queries.
	DistIndex = distindex.Index
	// StarCache is the star-view cache of §5.2.
	StarCache = match.Cache
)

// NewMatcher builds a matcher over g; cache may be nil.
func NewMatcher(g *Graph, dist DistIndex, cache *StarCache) *Matcher {
	return match.NewMatcher(g, dist, cache)
}

// NewStarCache returns a star-view cache with the given capacity and
// hit-decay factor (0.95 is a good default).
func NewStarCache(capacity int, decay float64) *StarCache {
	return match.NewCache(capacity, decay)
}

// NewDistIndex picks a distance oracle for g: Pruned Landmark Labeling
// on large graphs, bounded BFS otherwise.
func NewDistIndex(g *Graph) DistIndex { return distindex.Auto(g) }

// NewPLL builds a Pruned Landmark Labeling index explicitly.
func NewPLL(g *Graph) DistIndex { return distindex.NewPLL(g) }
