// Benchmarks regenerating the paper's evaluation: one testing.B
// benchmark per table/figure (DESIGN.md §3). Each iteration runs the
// figure's full experiment at go-test scale (bench.QuickOptions); run
// `go run ./cmd/wqe-experiments` for the paper-scale tables. With -v,
// the first iteration prints the regenerated table.
package wqe_test

import (
	"os"
	"testing"

	"wqe/internal/bench"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	run, ok := bench.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	for i := 0; i < b.N; i++ {
		h := bench.New(bench.QuickOptions())
		tbl := run(h)
		if i == 0 && testing.Verbose() {
			tbl.Fprint(os.Stdout)
		}
	}
}

// BenchmarkFig10aEfficiency regenerates Fig 10(a): mean runtime of
// FMAnsW / AnsWb / AnsWnc / AnsW / AnsHeu on all four dataset analogs.
func BenchmarkFig10aEfficiency(b *testing.B) { benchExperiment(b, "1a") }

// BenchmarkFig10bScalability regenerates Fig 10(b): runtime vs |G|.
func BenchmarkFig10bScalability(b *testing.B) { benchExperiment(b, "1b") }

// BenchmarkFig10cQuerySize regenerates Fig 10(c): runtime vs |E_Q|.
func BenchmarkFig10cQuerySize(b *testing.B) { benchExperiment(b, "1c") }

// BenchmarkFig10dBudgetDBpedia regenerates Fig 10(d): runtime vs budget
// on the DBpedia analog.
func BenchmarkFig10dBudgetDBpedia(b *testing.B) { benchExperiment(b, "1d") }

// BenchmarkFig10eBudgetIMDB regenerates Fig 10(e): runtime vs budget on
// the IMDB analog.
func BenchmarkFig10eBudgetIMDB(b *testing.B) { benchExperiment(b, "1e") }

// BenchmarkFig10fExemplarsDBpedia regenerates Fig 10(f): runtime vs
// |T| on the DBpedia analog.
func BenchmarkFig10fExemplarsDBpedia(b *testing.B) { benchExperiment(b, "1f") }

// BenchmarkFig10gExemplarsIMDB regenerates Fig 10(g): runtime vs |T| on
// the IMDB analog.
func BenchmarkFig10gExemplarsIMDB(b *testing.B) { benchExperiment(b, "1g") }

// BenchmarkFig10hTopology regenerates Fig 10(h): runtime vs query
// topology (star / tree / cyclic).
func BenchmarkFig10hTopology(b *testing.B) { benchExperiment(b, "1h") }

// BenchmarkFig10iCloseness regenerates Fig 10(i): relative closeness by
// algorithm, including AnsHeu beam widths.
func BenchmarkFig10iCloseness(b *testing.B) { benchExperiment(b, "2i") }

// BenchmarkFig10jClosenessQuerySize regenerates Fig 10(j): relative
// closeness vs |E_Q|.
func BenchmarkFig10jClosenessQuerySize(b *testing.B) { benchExperiment(b, "2j") }

// BenchmarkFig10kClosenessBudget regenerates Fig 10(k): relative
// closeness vs budget.
func BenchmarkFig10kClosenessBudget(b *testing.B) { benchExperiment(b, "2k") }

// BenchmarkFig10lAnytime regenerates Fig 10(l): anytime δ_t, AnsW vs
// the uninformed AnsHeuB.
func BenchmarkFig10lAnytime(b *testing.B) { benchExperiment(b, "3") }

// BenchmarkFig12aWhyMany regenerates Fig 12(a): Why-Many efficiency.
func BenchmarkFig12aWhyMany(b *testing.B) { benchExperiment(b, "4a") }

// BenchmarkFig12bWhyManyEffect regenerates Fig 12(b): Why-Many
// effectiveness (|IM| reduction).
func BenchmarkFig12bWhyManyEffect(b *testing.B) { benchExperiment(b, "4b") }

// BenchmarkFig12cWhyEmpty regenerates Fig 12(c): Why-Empty efficiency.
func BenchmarkFig12cWhyEmpty(b *testing.B) { benchExperiment(b, "4c") }

// BenchmarkExp5UserStudy regenerates the simulated user study:
// nDCG@3 and precision against the ground-truth relevance oracle.
func BenchmarkExp5UserStudy(b *testing.B) { benchExperiment(b, "5") }

// BenchmarkAblationCacheCapacity sweeps the star-view cache size
// (DESIGN.md §5 ablation).
func BenchmarkAblationCacheCapacity(b *testing.B) { benchExperiment(b, "a1") }

// BenchmarkAblationDistBackend compares the BFS and PLL distance
// oracles (DESIGN.md §5 ablation).
func BenchmarkAblationDistBackend(b *testing.B) { benchExperiment(b, "a2") }

// BenchmarkAblationAnalysisCap sweeps the picky-generation analysis cap
// (DESIGN.md §5 ablation).
func BenchmarkAblationAnalysisCap(b *testing.B) { benchExperiment(b, "a3") }
