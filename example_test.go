package wqe_test

import (
	"fmt"

	"wqe"
)

// ExampleNewWhy runs the paper's running example end to end: the
// original query misses the phones the user wants; the chase rewrites
// it within budget 4.
func ExampleNewWhy() {
	f := wqe.NewFig1Example()
	cfg := wqe.DefaultConfig()
	cfg.Budget = 4

	w, err := wqe.NewWhy(f.G, f.Q, f.E, cfg)
	if err != nil {
		panic(err)
	}
	a := w.AnsW()
	fmt.Printf("closeness %.2f (optimum %.2f), %d answers, satisfied=%v\n",
		a.Closeness, w.ClStar, len(a.Matches), a.Satisfied)
	// Output:
	// closeness 0.50 (optimum 0.50), 3 answers, satisfied=true
}

// ExampleWhy_TopK suggests several alternative rewrites, best first.
func ExampleWhy_TopK() {
	f := wqe.NewFig1Example()
	cfg := wqe.DefaultConfig()
	cfg.Budget = 4
	w, _ := wqe.NewWhy(f.G, f.Q, f.E, cfg)

	for i, a := range w.TopK(2) {
		fmt.Printf("#%d: closeness %.2f with %d operators\n", i+1, a.Closeness, len(a.Ops))
	}
	// Output:
	// #1: closeness 0.50 with 3 operators
	// #2: closeness 0.50 with 3 operators
}

// ExampleWhy_AnsWE explains an empty answer: which constraints must go
// for the desired entity to match.
func ExampleWhy_AnsWE() {
	g := wqe.NewGraph()
	brand := g.AddNode("Brand", map[string]wqe.Value{"Name": wqe.S("Apple")})
	laptop := g.AddNode("Laptop", map[string]wqe.Value{
		"Model": wqe.S("MR942CH/A"), "GPU": wqe.S("AMD"), "RAM": wqe.N(32),
	})
	g.AddEdge(laptop, brand, "madeBy")

	q := wqe.NewQuery()
	l := q.AddNode("Laptop",
		wqe.Literal{Attr: "GPU", Op: wqe.EQ, Val: wqe.S("NVidia")},
		wqe.Literal{Attr: "RAM", Op: wqe.GE, Val: wqe.N(32)},
	)
	b := q.AddNode("Brand")
	q.AddEdge(l, b, 1)
	q.Focus = l

	e := &wqe.Exemplar{Tuples: []wqe.TuplePattern{{
		"Model": wqe.ConstCell(wqe.S("MR942CH/A")),
	}}}
	w, _ := wqe.NewWhy(g, q, e, wqe.DefaultConfig())
	a := w.AnsWE()
	fmt.Println(a.Ops)
	// Output:
	// [RmL(u0, GPU = NVidia)]
}

// ExampleExemplarFromEntities builds an exemplar by pointing at
// entities, the non-expert input mode of §2.2.
func ExampleExemplarFromEntities() {
	f := wqe.NewFig1Example()
	e := wqe.ExemplarFromEntities(f.G,
		[]wqe.NodeID{f.Phones["P3"], f.Phones["P4"]},
		[]string{"Display"})
	fmt.Println(len(e.Tuples), "tuple patterns")
	// Output:
	// 2 tuple patterns
}
