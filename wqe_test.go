package wqe_test

import (
	"testing"

	"wqe"
)

// TestPublicAPIRoundtrip drives the whole public surface on the paper's
// running example: graph building, query building, exemplar
// construction, every algorithm entry point, and the workload
// generators.
func TestPublicAPIRoundtrip(t *testing.T) {
	f := wqe.NewFig1Example()

	cfg := wqe.DefaultConfig()
	cfg.Budget = 4
	w, err := wqe.NewWhy(f.G, f.Q, f.E, cfg)
	if err != nil {
		t.Fatal(err)
	}

	a := w.AnsW()
	if a.Closeness != 0.5 || !a.Satisfied {
		t.Errorf("AnsW on Fig 1: cl=%v sat=%v, want 0.5/true", a.Closeness, a.Satisfied)
	}
	if h := w.AnsHeu(3); h.Closeness != 0.5 {
		t.Errorf("AnsHeu on Fig 1: cl=%v", h.Closeness)
	}
	if tk := w.TopK(2); len(tk) != 2 || tk[0].Closeness < tk[1].Closeness {
		t.Errorf("TopK ordering broken")
	}
	if m := w.ApxWhyM(); m.Query == nil {
		t.Error("ApxWhyM returned nil query")
	}
	if e := w.AnsWE(); e.Query == nil {
		t.Error("AnsWE returned nil query")
	}
	if b := w.FMAnsW(); b.Query == nil {
		t.Error("FMAnsW returned nil query")
	}
}

func TestPublicGraphAndValues(t *testing.T) {
	g := wqe.NewGraph()
	v := g.AddNode("Thing", map[string]wqe.Value{
		"price": wqe.ParseValue("$42"),
		"name":  wqe.S("widget"),
	})
	if got, _ := g.Attr(v, "price"); !got.Equal(wqe.N(42)) {
		t.Errorf("ParseValue($42) = %v", got)
	}
	if !wqe.GE.Holds(wqe.N(5), wqe.N(4)) {
		t.Error("operator re-export broken")
	}

	q := wqe.NewQuery()
	u := q.AddNode("Thing", wqe.Literal{Attr: "price", Op: wqe.GE, Val: wqe.N(40)})
	q.Focus = u
	m := wqe.NewMatcher(g, wqe.NewDistIndex(g), wqe.NewStarCache(16, 0.95))
	if res := m.Match(q); len(res.Answer) != 1 {
		t.Errorf("public matcher broken: %v", res.Answer)
	}
}

func TestPublicDatasets(t *testing.T) {
	for _, name := range []string{wqe.DatasetKnowledge, wqe.DatasetMovies, wqe.DatasetOffshore, wqe.DatasetProducts} {
		g, err := wqe.GenerateDataset(name, 600, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if g.NumNodes() == 0 {
			t.Errorf("%s: empty graph", name)
		}
	}
	if _, err := wqe.GenerateDataset("unknown", 10, 1); err == nil {
		t.Error("unknown dataset must error")
	}

	g, _ := wqe.GenerateDataset(wqe.DatasetProducts, 2000, 5)
	inst, ok := wqe.GenerateWhyQuestion(g, wqe.WorkloadSpec{
		Query:      wqe.QueryWorkload{Edges: 2, MaxPredicates: 2},
		DisturbOps: 3,
	}, 9)
	if !ok {
		t.Skip("no instance on this seed")
	}
	if inst.Q == nil || inst.E == nil || len(inst.AnswerStar) == 0 {
		t.Error("incomplete why-question instance")
	}
}

func TestExemplarFromEntitiesPublic(t *testing.T) {
	f := wqe.NewFig1Example()
	e := wqe.ExemplarFromEntities(f.G, []wqe.NodeID{f.Phones["P3"], f.Phones["P4"]}, []string{"Display"})
	if len(e.Tuples) != 2 {
		t.Errorf("entity exemplar has %d tuples", len(e.Tuples))
	}
	cfg := wqe.DefaultConfig()
	if _, err := wqe.NewWhy(f.G, f.Q, e, cfg); err != nil {
		t.Errorf("entity exemplar rejected: %v", err)
	}
}
