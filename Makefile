# Developer entry points. `make ci` is exactly what the CI workflow
# runs; the individual targets exist for quick local iteration.

GO ?= go

# Packages with shared mutable state (sharded star-view cache, lazy
# graph caches, chase sessions, the worker pool, parallel PLL
# construction) that must stay clean under the race detector. The cache
# stripes, singleflight, and eviction paths all live in internal/match.
# cmd/wqe-datagen is deliberately absent: it spawns no goroutines of
# its own (the parallel PLL build it calls is raced via
# internal/distindex), so racing it would only slow CI down.
RACE_PKGS = ./internal/graph ./internal/match ./internal/chase ./internal/par ./internal/distindex ./internal/anscache ./internal/hist ./internal/loadgen ./cmd/wqe-serve

.PHONY: all build vet fmt-check test race lint callgraph lockorder check-cfg check-lockorder check serve-smoke fuzz-snapshot bench-parallel bench-batch bench-shard bench-load bench-serve ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

# Repo-specific static analysis (see internal/lint and README
# "Static analysis & CI"). Exits non-zero on any finding.
lint:
	$(GO) run ./cmd/wqe-lint ./...

# Dump the module's static call graph (nodes, dispatch-kinded edges,
# SCCs) — the substrate behind lockcheck and detsource.
callgraph:
	$(GO) run ./cmd/wqe-lint -callgraph

# Dump the module's lock-acquisition-order graph (lock identities,
# held-while-acquiring edges with witness chains, cycles) — the
# substrate behind the lockorder deadlock analysis.
lockorder:
	$(GO) run ./cmd/wqe-lint -lockorder

# The CFG/dataflow core under the flow-sensitive analyzers: golden
# block-structure dumps and the double-build determinism contract.
check-cfg:
	$(GO) test ./internal/lint/cfg

# End-to-end golden test of the -lockorder dump over the fixture module
# (one genuine AB-BA cycle, one consistent-order pair), including the
# double-run byte-identity contract.
check-lockorder:
	$(GO) test ./cmd/wqe-lint -run 'TestLockorder'

# End-to-end exercise of the serving layer: wqe-serve boots on an
# ephemeral port, answers every endpoint against the Fig 1 fixture,
# verifies /stats accounting, then drains and exits cleanly. Fully
# deterministic — the fixture's optimum and the request counts are
# pinned.
serve-smoke:
	$(GO) run ./cmd/wqe-serve -smoke

# Short randomized hammering of the binary snapshot reader on top of
# the committed corpus (which `go test` always replays as regression
# inputs). Any accepted input must re-encode byte-identically.
fuzz-snapshot:
	$(GO) test ./internal/graph -run '^$$' -fuzz FuzzSnapshotReader -fuzztime 10s

# Everything a PR must pass, without the benchmark regeneration.
check: build vet fmt-check test race lint check-lockorder serve-smoke

# Regenerate BENCH_parallel.json: sequential vs parallel wall-clock of
# the Q-Chase evaluation engine on the synthetic workload.
bench-parallel:
	WQE_BENCH_JSON=$(abspath BENCH_parallel.json) $(GO) test ./internal/chase -run TestEmitParallelBench -v

# Regenerate BENCH_batch.json: cross-question batch throughput (AskAll
# over one shared session) and sequential vs parallel PLL construction.
bench-batch:
	WQE_BATCH_BENCH_JSON=$(abspath BENCH_batch.json) $(GO) test ./internal/chase -run TestEmitBatchBench -v

# Regenerate BENCH_shard.json: AskAll throughput at batch widths
# 1/4/8/16 with the sharded vs single-shard star-view cache, plus a
# contended GetOrBuild hit microbenchmark.
bench-shard:
	WQE_SHARD_BENCH_JSON=$(abspath BENCH_shard.json) $(GO) test ./internal/chase -run TestEmitShardBench -v

# Regenerate BENCH_load.json: million-node cold start — JSON vs binary
# snapshot load wall time, bytes on disk, heap residency, PLL build vs
# embedded-label restore, and AskAll throughput over the restored
# graph (byte-identical to fresh, asserted). WQE_LOAD_BENCH_NODES
# scales the instance down for quick local runs.
bench-load:
	WQE_LOAD_BENCH_JSON=$(abspath BENCH_load.json) $(GO) test ./internal/chase -run TestEmitLoadBench -timeout 1800s -v

# Regenerate BENCH_serve.json: closed-loop serving throughput over the
# repeated-question Fig 1 workload with the answer cache off vs on
# (byte-identical responses asserted), per-endpoint latency
# percentiles, and the answer-cache hit/coalesce counters.
bench-serve:
	WQE_SERVE_BENCH_JSON=$(abspath BENCH_serve.json) $(GO) test ./cmd/wqe-serve -run TestEmitServeBench -v

ci: check fuzz-snapshot bench-parallel bench-batch bench-shard bench-load bench-serve
